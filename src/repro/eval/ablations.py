"""Ablation studies called out in DESIGN.md.

* AB1 — interleaved vs cascaded hammering (§5.2): same raw activation
  budget, very different disturbance.
* AB2 — vendor A dummy-row count: the counter-table eviction needs the
  full 16 dummies; fewer leave aggressor entries standing.
* AB3 — classic vs custom patterns (footnote 18): classic patterns flip
  nothing on TRR-protected modules; the same double-sided pattern rips
  through an unprotected chip.
* AB4 — TRR vs PARA (the paper's future-work direction): dummy-row
  diversion defeats deterministic TRR state but buys nothing against a
  stateless per-ACT coin, whose protection costs refresh overhead
  proportional to its probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import dataclasses

from ..attacks import (AttackExecutor, DoubleSidedPattern,
                       ManySidedPattern, SingleSidedPattern,
                       VendorAPattern, default_context)
from ..dram import ActBatch, AllOnes, DramChip, HammerMode
from ..parallel import WorkUnit
from ..softmc import SoftMCHost
from ..trr import ParaMitigation
from ..vendors import get_module
from ..vendors.spec import ModuleSpec, TrrVersion
from .engine import EngineConfig
from .report import render_table
from .runner import evaluate_baseline, evaluate_module
from .scale import STANDARD, EvalScale


@dataclass
class AblationResult:
    title: str
    headers: list[str]
    rows: list[list]

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)


def run_hammer_mode_ablation(scale: EvalScale = STANDARD
                             ) -> AblationResult:
    """AB1: flips from one hammer budget, interleaved vs cascaded."""
    spec = get_module("B8")
    rows = []
    for mode in (HammerMode.INTERLEAVED, HammerMode.CASCADED):
        host = scale.build_host(spec)
        victim = 2048
        host.write_row(0, victim, AllOnes())
        threshold_budget = 4 * scale.scaled_hc_first(spec)
        host._chip.hammer(ActBatch(
            bank=0, pattern=((victim - 1, threshold_budget),
                             (victim + 1, threshold_budget)),
            mode=mode))
        flips = len(host.read_row_mismatches(0, victim))
        rows.append([mode.value, 2 * threshold_budget, flips])
    return AblationResult(
        title="Ablation AB1 — hammer ordering (same activation budget)",
        headers=["mode", "total activations", "victim bit flips"],
        rows=rows)


def run_dummy_count_ablation(scale: EvalScale = STANDARD
                             ) -> AblationResult:
    """AB2: vendor A custom pattern vs dummy-row count."""
    spec = get_module("A0")
    rows = []
    for dummies in (4, 8, 12, 16):
        pattern = VendorAPattern(aggressor_hammers=72, dummy_count=dummies)
        result = evaluate_baseline(spec, scale, pattern, positions=6)
        rows.append([dummies, result.total_flips,
                     f"{100 * result.vulnerable_fraction:.0f}%"])
    return AblationResult(
        title="Ablation AB2 — vendor A pattern vs dummy-row count "
              "(16-entry table needs 16 dummies)",
        headers=["dummy rows", "total flips", "vulnerable rows"],
        rows=rows)


def run_baseline_ablation(scale: EvalScale = STANDARD) -> AblationResult:
    """AB3: classic patterns vs custom, on protected and raw chips."""
    rows = []
    for module_id in ("A0", "B8", "C9"):
        spec = get_module(module_id)
        for pattern in (SingleSidedPattern(), DoubleSidedPattern(),
                        ManySidedPattern(sides=12)):
            result = evaluate_baseline(spec, scale, pattern, positions=6)
            rows.append([module_id, pattern.name, result.total_flips])
        custom = evaluate_module(spec, scale, positions=6)
        rows.append([module_id, custom.pattern_name,
                     custom.result.total_flips])
    raw = ModuleSpec(module_id="RAW", vendor="-", date_code="15-01",
                     density_gbit=4, ranks=1, num_banks=16, pins=8,
                     hc_first=139_000, trr_version=TrrVersion.NONE)
    result = evaluate_baseline(raw, scale, DoubleSidedPattern(),
                               positions=6)
    rows.append(["no-TRR", "double-sided", result.total_flips])
    return AblationResult(
        title="Ablation AB3 — classic vs custom patterns (footnote 18)",
        headers=["module", "pattern", "total flips"],
        rows=rows)


def run_mitigation_ablation(scale: EvalScale = STANDARD
                            ) -> AblationResult:
    """AB4: the vendor-A custom pattern vs its TRR and vs PARA."""
    spec = get_module("A0")
    rows = []
    for mitigation, probability in (("A_TRR1", None), ("PARA", 1 / 2000),
                                    ("PARA", 1 / 250)):
        for pattern in (DoubleSidedPattern(),
                        VendorAPattern(aggressor_hammers=72)):
            flips = 0
            overhead_acc = 0.0
            victims = (700, 1500, 2300, 3100)
            for victim in victims:
                if probability is None:
                    host = scale.build_host(spec)
                else:
                    config = spec.device_config(
                        rows_per_bank=scale.rows_per_bank,
                        row_bits=scale.row_bits)
                    config = dataclasses.replace(
                        config,
                        refresh_cycle_refs=scale.refresh_cycle_refs,
                        disturbance=dataclasses.replace(
                            config.disturbance,
                            hc_first=scale.scaled_hc_first(spec)))
                    host = SoftMCHost(DramChip(
                        config, ParaMitigation(probability=probability,
                                               seed=11)))
                executor = AttackExecutor(host, host._chip.mapping)
                windows = 2 * scale.refresh_cycle_refs // 9
                context = default_context(0, victim, host._chip.mapping,
                                          9, host.num_banks)
                flips += executor.run(pattern, context,
                                      windows).flips_at(victim)
                stats = host._chip.stats
                overhead_acc += stats.trr_refreshes / max(stats.activates,
                                                          1)
            label = (mitigation if probability is None
                     else f"PARA 1/{round(1 / probability)}")
            rows.append([label, pattern.name, flips,
                         f"{1e6 * overhead_acc / len(victims):.0f}"])
    return AblationResult(
        title="Ablation AB4 — deterministic TRR vs stateless PARA",
        headers=["mitigation", "pattern", "flips",
                 "refreshes / M ACTs"],
        rows=rows)


#: The ablation studies in rendering order (AB1-AB4).
ABLATIONS = (
    ("ab1-hammer-mode", run_hammer_mode_ablation),
    ("ab2-dummy-count", run_dummy_count_ablation),
    ("ab3-baseline", run_baseline_ablation),
    ("ab4-mitigation", run_mitigation_ablation),
)


def run_ablations(scale: EvalScale = STANDARD, workers: int = 1,
                  log=None, metrics=None, telemetry=None,
                  profiler=None, cache=None,
                  evidence=None) -> list[AblationResult]:
    """All four ablation studies, sharded over *workers* processes.

    Results come back in AB1..AB4 order; ``workers=1`` runs each study
    inline, in order, exactly as the sequential CLI always has.
    """
    units = [WorkUnit(unit_id=f"ablations/{name}", fn=fn, args=(scale,),
                      meta={"ablation": name, "scale": scale.name,
                            "artifact": "ablations"})
             for name, fn in ABLATIONS]
    engine = EngineConfig(workers=workers, log=log, metrics=metrics,
                          telemetry=telemetry, profiler=profiler,
                          cache=cache, evidence=evidence)
    return engine.run(units).values
