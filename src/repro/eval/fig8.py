"""Figure 8: bit flips per row vs hammers per aggressor per REF.

The paper plots box-and-whisker distributions for modules A5, B8 and C7
(the most vulnerable module of each vendor's first TRR version,
footnote 15) while sweeping the aggressor hammer count of each custom
pattern.  Shape targets: vendor A has an interior optimum; vendors B and
C rise to a knee and collapse when aggressor hammering starves the
diversion phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attacks import (VendorAPattern, VendorBPattern, VendorCPattern,
                       run_hammer_sweep, victim_positions)
from ..attacks.sweep import HammerSweepResult
from ..core.mapping_re import CouplingTopology
from ..errors import ConfigError
from ..parallel import WorkUnit, unit_observability
from ..vendors import get_module
from .engine import EngineConfig
from .report import render_table
from .scale import STANDARD, EvalScale

#: Hammer sweep values per module: hammers per aggressor per *window*
#: for A/B (the pattern's native knob), dummy-fraction-derived counts
#: for C.
SWEEPS = {
    "A5": (12, 24, 48, 64, 72, 80, 96, 144),
    "B8": (20, 40, 60, 80, 95, 110, 130),
    "C7": (126, 252, 440, 630, 880, 1100),
}


def _pattern_factory(module_id: str):
    if module_id.startswith("A"):
        return lambda h: VendorAPattern(aggressor_hammers=h)
    if module_id.startswith("B"):
        return lambda h: VendorBPattern(aggressor_hammers=h)
    return lambda h: VendorCPattern(aggressor_hammers=h)


@dataclass
class Fig8Result:
    module_id: str
    trr_period: int
    sweep: HammerSweepResult

    def rows(self) -> list[list]:
        out = []
        for hammers in sorted(self.sweep.flips_by_hammers):
            flips = self.sweep.flips_by_hammers[hammers]
            q1, median, q3 = self.sweep.quartiles(hammers)
            per_ref = hammers / self.trr_period
            out.append([f"{per_ref:.1f}", hammers, min(flips), q1, median,
                        q3, max(flips)])
        return out

    def render(self) -> str:
        return render_table(
            ["hammers/aggr/REF", "hammers/aggr/window", "min", "q1",
             "median", "q3", "max"],
            self.rows(),
            title=f"Figure 8 ({self.module_id}) — flips per row vs "
                  "aggressor hammer count")


def run_fig8(module_id: str, scale: EvalScale = STANDARD,
             hammer_counts=None, obs=None) -> Fig8Result:
    if module_id not in SWEEPS and hammer_counts is None:
        raise ConfigError(
            f"no default sweep for {module_id}; pass hammer_counts")
    if obs is None:
        obs = unit_observability()
    spec = get_module(module_id)
    host = scale.build_host(spec, obs=obs)
    mapping = host._chip.mapping
    trr_period = spec.trr_parameters()["trr_ref_period"]
    windows = max(2 * scale.scaled_cycle(spec) // trr_period, 1)
    coupling = (CouplingTopology.PAIRED if spec.paired_rows
                else CouplingTopology.STANDARD)
    positions = victim_positions(host.rows_per_bank,
                                 scale.fig8_positions, coupling,
                                 margin=64)
    def fresh_host():
        new_host = scale.build_host(spec, obs=obs)
        return new_host, new_host._chip.mapping

    sweep = run_hammer_sweep(
        host, mapping, _pattern_factory(module_id),
        hammer_counts or SWEEPS[module_id], positions, trr_period,
        windows, paired=spec.paired_rows, host_factory=fresh_host)
    return Fig8Result(module_id=module_id, trr_period=trr_period,
                      sweep=sweep)


def run_fig8_many(module_ids, scale: EvalScale = STANDARD,
                  workers: int = 1, log=None, metrics=None,
                  telemetry=None, profiler=None,
                  cache=None, evidence=None) -> list[Fig8Result]:
    """One hammer sweep per module, sharded over *workers* processes."""
    units = [WorkUnit(unit_id=f"fig8/{module_id}", fn=run_fig8,
                      args=(module_id, scale),
                      meta={"module": module_id, "scale": scale.name,
                            "artifact": "fig8"})
             for module_id in module_ids]
    engine = EngineConfig(workers=workers, log=log, metrics=metrics,
                          telemetry=telemetry, profiler=profiler,
                          cache=cache, evidence=evidence)
    return engine.run(units).values
