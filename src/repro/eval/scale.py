"""Evaluation scaling: keep the attack/defense balance, shrink the clock.

The paper's experiments run for full 64 ms refresh windows (~8K REFs)
against banks of 16K-131K rows.  Simulating that per victim position for
45 modules is wasteful in pure Python, and — more importantly —
unnecessary: the dynamics that decide whether an attack defeats a TRR
mechanism depend on the *ratio* between how much disturbance a victim
accumulates per refresh window and its RowHammer threshold.  Shrinking
the refresh window (``refresh_cycle_refs``) and the implanted HC_first by
the **same factor** preserves that ratio exactly, along with every
TRR-visible quantity (TRR-to-REF periods, table sizes, sample periods,
detection windows are untouched).

Measured HC_first values are rescaled back (x ``hc_divisor``) before
reporting, and EXPERIMENTS.md documents the scaling per artifact.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..dram import DramChip
from ..errors import ConfigError
from ..softmc import SoftMCHost
from ..vendors import ModuleSpec


@dataclass(frozen=True)
class EvalScale:
    """One evaluation operating point."""

    name: str
    rows_per_bank: int = 4096
    row_bits: int = 8192
    refresh_cycle_refs: int = 1024
    hc_divisor: int = 8
    #: Victim positions sampled per bank for vulnerability sweeps.
    positions: int = 48
    #: Victim rows per point in the Figure 8 hammer sweep.
    fig8_positions: int = 12

    def __post_init__(self) -> None:
        if self.refresh_cycle_refs > self.rows_per_bank:
            raise ConfigError("cycle cannot exceed rows (empty slots)")
        if self.hc_divisor < 1:
            raise ConfigError("hc_divisor must be >= 1")

    def scaled_hc_first(self, spec: ModuleSpec) -> int:
        return max(spec.hc_first // self.hc_divisor, 100)

    def unscale_hc(self, measured: int) -> int:
        """Rescale a measured HC back to real-module units."""
        return measured * self.hc_divisor

    def scaled_cycle(self, spec: ModuleSpec) -> int:
        """Refresh cycle at this operating point.

        Vendor A's shorter real-chip cycle (3758 vs the nominal 8192,
        Obs A8) shrinks by the same proportion.
        """
        proportional = (spec.refresh_cycle_refs * self.refresh_cycle_refs
                        // 8192)
        return max(min(proportional, self.refresh_cycle_refs), 64)

    def build_host(self, spec: ModuleSpec, obs=None) -> SoftMCHost:
        """Build the module at this operating point, TRR attached.

        *obs* is an optional :class:`repro.obs.Observability` bundle the
        host records into (inherited by every pipeline component).
        """
        config = spec.device_config(rows_per_bank=self.rows_per_bank,
                                    row_bits=self.row_bits)
        config = dataclasses.replace(
            config,
            refresh_cycle_refs=self.scaled_cycle(spec),
            disturbance=dataclasses.replace(
                config.disturbance, hc_first=self.scaled_hc_first(spec)))
        return SoftMCHost(DramChip(config, spec.make_trr()), obs=obs)


#: Standard benchmark operating point.
STANDARD = EvalScale(name="standard")

#: Fast operating point for smoke runs (same physics, fewer samples).
QUICK = EvalScale(name="quick", positions=16, fig8_positions=6)


def get_scale(name: str) -> EvalScale:
    scales = {"standard": STANDARD, "quick": QUICK}
    try:
        return scales[name]
    except KeyError:
        raise ConfigError(f"unknown scale {name!r}; "
                          f"known: {sorted(scales)}") from None
