"""Survey: one combined markdown report per module list.

Stitches the Table 1 reverse-engineering row, the Figure 9 vulnerability
number, and the Figure 10 ECC assessment into a single document — the
artifact a lab would circulate after putting a new DIMM on the rig.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ecc import assess_ecc, dataword_flip_counts
from .report import format_pct, render_histogram, render_table
from .scale import STANDARD, EvalScale
from .table1 import Table1Row, run_table1_module


@dataclass
class ModuleSurvey:
    row: Table1Row

    def render(self) -> str:
        spec = self.row.spec
        profile = self.row.profile
        evaluation = self.row.evaluation
        flips = evaluation.result.flips_by_row
        assessment = assess_ecc(flips)
        lines = [
            f"## Module {spec.module_id} ({spec.date_code}, "
            f"{spec.density_gbit} Gbit, {spec.num_banks} banks)",
            "",
            f"* implanted TRR version: {spec.trr_version.value}",
            f"* recovered profile:     {profile.summary()}",
            "* ground truth match:    "
            f"{'yes' if self.row.ground_truth_matches() else 'NO'}",
            f"* HC_first (measured):   {self.row.measured_hc_first:,}",
            f"* best attack:           {evaluation.pattern_name} "
            f"({evaluation.hammers_per_aggressor_per_ref:.1f} "
            "hammers/aggr/REF)",
            "* vulnerable rows:       "
            f"{format_pct(evaluation.vulnerable_fraction)}",
            f"* max flips per row:     {evaluation.max_flips_per_row}",
            "* SECDED silently defeated words: "
            f"{assessment.secded_defeated} of {assessment.words_total}",
            "",
            render_histogram("8-byte datawords by flip count",
                             dict(dataword_flip_counts(flips))),
        ]
        return "\n".join(lines)


@dataclass
class SurveyResult:
    surveys: list[ModuleSurvey]

    def render(self) -> str:
        header = ["# U-TRR module survey", ""]
        summary_rows = []
        for survey in self.surveys:
            row = survey.row
            summary_rows.append([
                row.spec.module_id,
                row.spec.trr_version.value,
                row.profile.detection,
                "yes" if row.ground_truth_matches() else "NO",
                format_pct(row.evaluation.vulnerable_fraction),
                row.evaluation.result.windows,
            ])
        header.append(render_table(
            ["module", "version", "detected", "recovered", "vulnerable",
             "attack windows"], summary_rows))
        header.append("")
        return "\n\n".join(["\n".join(header)]
                           + [survey.render() for survey in self.surveys])


def run_survey(module_ids, scale: EvalScale = STANDARD) -> SurveyResult:
    return SurveyResult(surveys=[
        ModuleSurvey(row=run_table1_module(module_id, scale))
        for module_id in module_ids])
