"""Table 1: full U-TRR reverse engineering + attack results per module.

For each module this runs the real inference pipeline (mapping RE, Row
Scout, refresh calibration, all §6 experiments) through the side channel
only, measures HC_first with refresh disabled, and reports the attack
outcome columns from the vulnerability sweep — side by side with the
implanted ground truth and the paper's reported values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attacks import measure_hc_first
from ..core import InferenceConfig, InferredTrrProfile, TrrInference
from ..parallel import WorkUnit, unit_observability
from ..vendors import ModuleSpec, get_module
from .engine import EngineConfig
from .report import format_pct, render_table
from .runner import ModuleEvaluation, evaluate_module
from .scale import STANDARD, EvalScale


@dataclass
class Table1Row:
    spec: ModuleSpec
    profile: InferredTrrProfile
    measured_hc_first: int
    evaluation: ModuleEvaluation

    def ground_truth_matches(self) -> bool:
        params = self.spec.trr_parameters()
        return (self.profile.detection == params.get("kind")
                and self.profile.trr_ref_period
                == params.get("trr_ref_period"))


#: Inference effort used by the Table 1 harness (reduced validation
#: rounds are safe: evaluation chips disable VRT; see EXPERIMENTS.md).
TABLE1_INFERENCE = InferenceConfig(
    validation_rounds=4,
    period_scan_experiments=120,
    neighbor_distances=(1, 2),
    neighbor_repeats=2,
    persistence_probes=2,
    kind_repeats=3,
    capacity_candidates=(16, 17),
    capacity_repeats=2,
)


def _inference_host(spec: ModuleSpec, scale: EvalScale, obs=None):
    """Inference needs denser weak rows than the attack sweeps (Row
    Scout must find 16+ same-bucket groups) and a VRT-free population so
    reduced validation rounds stay safe.  RowHammer thresholds stay
    *unscaled*: the §6 experiments' hammer counts are calibrated to
    trigger TRR without flipping the profiled rows (§6.1.1)."""
    import dataclasses as dc
    from ..dram import DramChip
    from ..softmc import SoftMCHost
    config = spec.device_config(rows_per_bank=8192,
                                row_bits=scale.row_bits,
                                weak_cells_per_row_mean=2.0,
                                vrt_fraction=0.0)
    config = dc.replace(
        config,
        refresh_cycle_refs=max(scale.scaled_cycle(spec), 2048
                               * spec.refresh_cycle_refs // 8192))
    return SoftMCHost(DramChip(config, spec.make_trr()), obs=obs)


def run_table1_module(module_id: str,
                      scale: EvalScale = STANDARD) -> Table1Row:
    spec = get_module(module_id)
    obs = unit_observability()
    inference_host = _inference_host(spec, scale, obs=obs)
    inference = TrrInference(inference_host, TABLE1_INFERENCE)
    profile = inference.run()
    hc_host = scale.build_host(spec, obs=obs)
    measured = measure_hc_first(
        hc_host, hc_host._chip.mapping,
        hi=6 * scale.scaled_hc_first(spec),
        paired=spec.paired_rows)
    evaluation = evaluate_module(spec, scale, obs=obs)
    return Table1Row(spec=spec, profile=profile,
                     measured_hc_first=scale.unscale_hc(measured),
                     evaluation=evaluation)


@dataclass
class Table1Result:
    rows: list[Table1Row]

    def render(self) -> str:
        headers = ["module", "date", "Gbit", "banks", "HC_first",
                   "HC_first(paper)", "version", "detection",
                   "capacity", "per-bank", "TRR/REF", "neighbors",
                   "vuln rows", "vuln(paper)", "flips/row/hammer",
                   "recovered"]
        table = []
        for row in self.rows:
            spec = row.spec
            paper = spec.paper
            table.append([
                spec.module_id, spec.date_code, spec.density_gbit,
                spec.num_banks,
                f"{row.measured_hc_first // 1000}K",
                (f"{paper.hc_first_range[0] // 1000}K-"
                 f"{paper.hc_first_range[1] // 1000}K"),
                spec.trr_version.value,
                row.profile.detection,
                row.profile.aggressor_capacity,
                row.profile.per_bank,
                f"1/{row.profile.trr_ref_period}",
                row.profile.neighbors_refreshed,
                format_pct(row.evaluation.vulnerable_fraction),
                (f"{paper.vulnerable_rows_pct_range[0]:.1f}-"
                 f"{paper.vulnerable_rows_pct_range[1]:.1f}%"),
                f"{row.evaluation.max_flips_per_row_per_hammer:.2f}",
                "yes" if row.ground_truth_matches() else "NO",
            ])
        return render_table(headers, table,
                            title="Table 1 — U-TRR observations and "
                                  "attack results")


#: Modules covering every distinct TRR implementation of Table 1.
TABLE1_REPRESENTATIVES = ("A0", "A13", "B0", "B9", "B13",
                          "C7", "C9", "C12")


def run_table1(module_ids=None, scale: EvalScale = STANDARD,
               workers: int = 1, log=None, metrics=None,
               telemetry=None, profiler=None, cache=None,
               evidence=None) -> Table1Result:
    ids = list(module_ids or TABLE1_REPRESENTATIVES)
    engine = EngineConfig(workers=workers, log=log, metrics=metrics,
                          telemetry=telemetry, profiler=profiler,
                          cache=cache, evidence=evidence)
    if engine.active:
        units = [WorkUnit(unit_id=f"table1/{module_id}",
                          fn=run_table1_module, args=(module_id, scale),
                          meta={"module": module_id, "scale": scale.name,
                                "artifact": "table1"})
                 for module_id in ids]
        return Table1Result(rows=engine.run(units).values)
    return Table1Result(rows=[run_table1_module(module_id, scale)
                              for module_id in ids])
