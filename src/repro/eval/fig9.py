"""Figure 9: percentage of rows vulnerable to the custom patterns."""

from __future__ import annotations

from dataclasses import dataclass

from ..vendors import all_modules, get_module
from .engine import EngineConfig
from .report import format_pct, render_table
from .runner import ModuleEvaluation, evaluate_module, evaluate_modules
from .scale import STANDARD, EvalScale


@dataclass
class Fig9Result:
    evaluations: list[ModuleEvaluation]

    def rows(self) -> list[list]:
        out = []
        for evaluation in self.evaluations:
            spec = evaluation.spec
            paper = spec.paper
            paper_pct = ("-" if paper is None else
                         f"{paper.vulnerable_rows_pct_range[0]:.1f}-"
                         f"{paper.vulnerable_rows_pct_range[1]:.1f}%")
            out.append([
                spec.module_id,
                spec.trr_version.value,
                evaluation.pattern_name,
                format_pct(evaluation.vulnerable_fraction),
                paper_pct,
                evaluation.max_flips_per_row,
            ])
        return out

    def render(self) -> str:
        return render_table(
            ["module", "TRR", "pattern", "vulnerable rows",
             "paper", "max flips/row"],
            self.rows(),
            title="Figure 9 — rows with >= 1 RowHammer bit flip under the "
                  "custom patterns")


def run_fig9(module_ids: list[str] | None = None,
             scale: EvalScale = STANDARD,
             positions: int | None = None, workers: int = 1,
             log=None, metrics=None, telemetry=None,
             profiler=None, cache=None, evidence=None) -> Fig9Result:
    engine = EngineConfig(workers=workers, log=log, metrics=metrics,
                          telemetry=telemetry, profiler=profiler,
                          cache=cache, evidence=evidence)
    if engine.active:
        ids = (list(module_ids) if module_ids
               else [spec.module_id for spec in all_modules()])
        return Fig9Result(evaluations=evaluate_modules(
            ids, scale, positions, **engine.harness_kwargs()))
    specs = ([get_module(module_id) for module_id in module_ids]
             if module_ids else all_modules())
    evaluations = [evaluate_module(spec, scale, positions)
                   for spec in specs]
    return Fig9Result(evaluations=evaluations)


#: One representative module per TRR version (keeps benches tractable).
REPRESENTATIVE_MODULES = ("A0", "A13", "B0", "B9", "B13",
                          "C0", "C7", "C9", "C12")
