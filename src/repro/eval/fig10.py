"""Figure 10: distribution of 8-byte datawords by bit-flip count.

Buckets the vulnerability-sweep flips into 64-bit words, histograms
per-word flip counts per module, and classifies each flipped word
against SECDED and Chipkill — the paper's §7.4 ECC-bypass argument.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..ecc import (ChipkillOutcome, DecodeStatus, assess_ecc,
                   dataword_flip_counts, required_rs_parity_symbols)
from ..vendors import all_modules, get_module
from .engine import EngineConfig
from .report import render_histogram, render_table
from .runner import ModuleEvaluation, evaluate_module, evaluate_modules
from .scale import STANDARD, EvalScale


@dataclass
class Fig10Result:
    evaluations: list[ModuleEvaluation]

    def per_module(self) -> list[tuple[str, Counter]]:
        return [(evaluation.spec.module_id,
                 dataword_flip_counts(evaluation.result.flips_by_row))
                for evaluation in self.evaluations]

    def render(self) -> str:
        sections = ["Figure 10 — 8-byte datawords by bit-flip count"]
        summary_rows = []
        worst = 0
        for module_id, histogram in self.per_module():
            evaluation = next(e for e in self.evaluations
                              if e.spec.module_id == module_id)
            assessment = assess_ecc(evaluation.result.flips_by_row)
            worst = max(worst, assessment.max_flips_in_word)
            sections.append(render_histogram(
                f"  {module_id} (words with N flips)", dict(histogram)))
            summary_rows.append([
                module_id,
                assessment.words_total,
                assessment.secded[DecodeStatus.CORRECTED],
                assessment.secded[DecodeStatus.DETECTED],
                assessment.secded_defeated,
                assessment.chipkill[ChipkillOutcome.BEYOND_GUARANTEE],
                assessment.max_flips_in_word,
            ])
        sections.append(render_table(
            ["module", "flipped words", "SECDED corrects",
             "SECDED detects", "SECDED silently defeated",
             "Chipkill beyond guarantee", "max flips/word"],
            summary_rows, title="ECC outcomes (7.4)"))
        sections.append(
            "Reed-Solomon parity symbols needed to detect the worst "
            f"word ({worst} flips): "
            f"{required_rs_parity_symbols(worst)}")
        return "\n\n".join(sections)


def run_fig10(module_ids: list[str] | None = None,
              scale: EvalScale = STANDARD,
              evaluations: list[ModuleEvaluation] | None = None,
              positions: int | None = None, workers: int = 1,
              log=None, metrics=None, telemetry=None,
              profiler=None, cache=None, evidence=None) -> Fig10Result:
    """Reuses Figure 9 evaluations when given (same underlying sweep)."""
    if evaluations is None:
        engine = EngineConfig(workers=workers, log=log, metrics=metrics,
                              telemetry=telemetry, profiler=profiler,
                              cache=cache, evidence=evidence)
        if engine.active:
            ids = (list(module_ids) if module_ids
                   else [spec.module_id for spec in all_modules()])
            evaluations = evaluate_modules(ids, scale, positions,
                                           **engine.harness_kwargs())
        else:
            specs = ([get_module(module_id) for module_id in module_ids]
                     if module_ids else all_modules())
            evaluations = [evaluate_module(spec, scale, positions)
                           for spec in specs]
    return Fig10Result(evaluations=evaluations)
