"""Chaos harness: full inference under injected faults.

For each representative module (one per vendor) this builds the chip,
wraps its SoftMC host in a seeded :class:`~repro.faults.FaultInjector`,
and runs the *hardened* inference pipeline.  A module counts as
recovered when the inferred profile still matches the mechanism's
implanted ground truth — detection kind, TRR-to-REF period and
aggressor capacity — despite the injected VRT storms, temperature
drift, readback noise, command drops/duplicates and stale retention
scales.

The report includes the injector's per-family fault counters *and* the
pipeline's recovery-work counters (retries, quarantines, rejected
outliers, recalibrations): a passing run demonstrably exercised the
fault handling rather than dodging it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import InferenceConfig, InferredTrrProfile, TrrInference
from ..dram import DramChip
from ..faults import FaultInjector
from ..obs import build_manifest
from ..parallel import WorkUnit, unit_observability
from ..rng import derive_seed
from ..softmc import SoftMCHost
from ..vendors import ModuleSpec, get_module
from .engine import EngineConfig
from .report import render_table

#: One module per vendor, covering the three TRR families of Table 1
#: (counter table / activation sampler / deferred window).
RESILIENCE_MODULES = ("A5", "B0", "C7")


def hardened_inference_config(**overrides) -> InferenceConfig:
    """Reduced-effort settings with every resilience knob switched on.

    The effort knobs mirror the Table 1 harness; on top of those the
    hardening is enabled: majority voting, validation-round retries,
    whole-scan retries, schedule recalibration and graceful degradation.
    """
    defaults = dict(
        validation_rounds=4,
        period_scan_experiments=120,
        neighbor_distances=(1, 2),
        neighbor_repeats=2,
        persistence_probes=2,
        kind_repeats=3,
        capacity_candidates=(16, 17),
        capacity_repeats=2,
        experiment_votes=3,
        profiling_round_retries=2,
        profiling_scan_attempts=3,
        recalibrate_after_violations=2,
        partial_on_failure=True,
    )
    defaults.update(overrides)
    return InferenceConfig(**defaults)


def _chaos_host(spec: ModuleSpec, fault_profile: str, seed: int,
                obs=None) -> SoftMCHost:
    """An inference-friendly chip with a seeded injector at its boundary.

    Unlike the quiet evaluation chips, a small VRT population is kept so
    the injector's VRT storms have cells to act on — the hardened Row
    Scout must reject or quarantine them.  *obs* optionally records the
    chaos run's command stream and fault events.
    """
    config = spec.device_config(rows_per_bank=8192, row_bits=1024,
                                weak_cells_per_row_mean=2.0,
                                vrt_fraction=0.005)
    injector = FaultInjector(fault_profile,
                             seed=derive_seed("resilience", seed,
                                              spec.module_id))
    return SoftMCHost(DramChip(config, spec.make_trr()), faults=injector,
                      obs=obs)


@dataclass
class ModuleResilience:
    """Outcome of one chaos run: recovered or not, and at what cost."""

    module_id: str
    fault_profile: str
    profile: InferredTrrProfile
    expected: dict
    fault_counters: dict
    recovery: dict
    #: Run manifest (seed, fault profile, per-stream RNG seeds, recovery
    #: counters, git describe) — byte-diffable across identical runs.
    manifest: dict = field(default_factory=dict)

    @property
    def faults_injected(self) -> int:
        return sum(count for event, count in self.fault_counters.items()
                   if event != "session")

    @property
    def recovery_work(self) -> int:
        """Retry/quarantine/outlier/recalibration events (0 = untested)."""
        return (self.recovery.get("rowscout_round_retries", 0)
                + self.recovery.get("rowscout_rows_quarantined", 0)
                + self.recovery.get("rowscout_groups_replaced", 0)
                + self.recovery.get("rowscout_scan_restarts", 0)
                + self.recovery.get("analyzer_outliers_rejected", 0)
                + self.recovery.get("analyzer_hits_disavowed", 0)
                + self.recovery.get("analyzer_groups_revalidated", 0)
                + self.recovery.get("recalibrations", 0)
                + self.recovery.get("degraded_stages", 0))

    @property
    def recovered(self) -> bool:
        """Does the inferred profile match the implanted ground truth?"""
        expected = self.expected
        if self.profile.detection != expected["kind"]:
            return False
        if self.profile.trr_ref_period != expected["trr_ref_period"]:
            return False
        kind = expected["kind"]
        capacity = self.profile.aggressor_capacity
        if kind == "counter":
            return capacity == expected["table_size"]
        if kind == "sampling":
            return capacity == 1
        return capacity is None  # window: the paper leaves it Unknown


@dataclass
class ResilienceReport:
    """All chaos runs of one ``run_resilience`` invocation."""

    modules: list[ModuleResilience]
    #: ``(module_id, error)`` pairs for chaos runs the execution engine
    #: quarantined after exhausting retries (empty on healthy runs, so
    #: sequential and parallel reports stay byte-identical).
    quarantined: list[tuple[str, str]] = field(default_factory=list)
    #: ``(module_id, description)`` pairs for chaos runs the telemetry
    #: watchdog flagged as stalled mid-run.  Only ever populated when a
    #: stall deadline is armed (``telemetry.stall_deadline_s``), so
    #: default runs stay byte-identical for any worker count.
    stalled: list[tuple[str, str]] = field(default_factory=list)

    @property
    def all_recovered(self) -> bool:
        return (all(module.recovered for module in self.modules)
                and not self.quarantined)

    def render(self) -> str:
        headers = ["module", "faults", "injected", "detection", "TRR/REF",
                   "capacity", "retries", "quarantined", "outliers",
                   "recalib.", "degraded", "recovered"]
        table = []
        for module in self.modules:
            recovery = module.recovery
            table.append([
                module.module_id,
                module.fault_profile,
                module.faults_injected,
                module.profile.detection,
                (f"1/{module.profile.trr_ref_period}"
                 if module.profile.trr_ref_period else "none"),
                module.profile.aggressor_capacity,
                recovery.get("rowscout_round_retries", 0),
                recovery.get("rowscout_rows_quarantined", 0),
                recovery.get("analyzer_outliers_rejected", 0),
                recovery.get("recalibrations", 0),
                recovery.get("degraded_stages", 0),
                "yes" if module.recovered else "NO",
            ])
        rendered = render_table(
            headers, table,
            title="Resilience — inference under injected faults")
        if self.quarantined:
            lines = [f"QUARANTINED {module_id}: {error}"
                     for module_id, error in self.quarantined]
            rendered = "\n".join([rendered, *lines])
        if self.stalled:
            lines = [f"STALLED {module_id}: {description}"
                     for module_id, description in self.stalled]
            rendered = "\n".join([rendered, *lines])
        return rendered


def run_module_resilience(module_id: str, fault_profile: str = "default",
                          seed: int = 0,
                          config: InferenceConfig | None = None,
                          obs=None) -> ModuleResilience:
    """One chaos run: hardened inference on *module_id* under faults.

    *obs* optionally records the run (trace/metrics/spans) and defaults
    to the ambient work-unit bundle; the returned artifact is always
    stamped with a run manifest carrying the fault profile, the
    injector's per-stream RNG seeds and the recovery counters.
    """
    if obs is None:
        obs = unit_observability()
    spec = get_module(module_id)
    host = _chaos_host(spec, fault_profile, seed, obs=obs)
    inference = TrrInference(host, config or hardened_inference_config())
    profile = inference.run()
    recovery = inference.stats.as_dict()
    manifest = build_manifest(
        seed=seed, module=module_id, fault_profile=fault_profile,
        include_time=False,
        fault_stream_seeds=host.faults.stream_seeds(),
        recovery_counters=recovery)
    return ModuleResilience(
        module_id=module_id,
        fault_profile=fault_profile,
        profile=profile,
        expected=spec.trr_parameters(),
        fault_counters=dict(host.faults.counters),
        recovery=recovery,
        manifest=manifest)


def run_resilience(module_ids=None, fault_profile: str = "default",
                   seed: int = 0,
                   config: InferenceConfig | None = None,
                   workers: int = 1, log=None, metrics=None,
                   telemetry=None, profiler=None,
                   cache=None, evidence=None) -> ResilienceReport:
    """Chaos runs over one representative module per vendor.

    With ``workers > 1`` the chaos runs shard over a process pool; a
    module whose worker keeps crashing is *quarantined* — reported by
    name instead of sinking the whole fleet, the same isolate-and-name
    semantics the hardened Row Scout applies to misbehaving rows.  A
    *telemetry* config with a stall deadline additionally arms the
    watchdog: chaos runs whose command counters stop advancing are
    named in the report as STALLED with their last open span.
    """
    ids = list(module_ids or RESILIENCE_MODULES)
    engine = EngineConfig(workers=workers, log=log, metrics=metrics,
                          telemetry=telemetry, profiler=profiler,
                          cache=cache, evidence=evidence)
    if engine.active:
        units = [WorkUnit(unit_id=f"resilience/{module_id}",
                          fn=run_module_resilience,
                          args=(module_id, fault_profile, seed, config),
                          meta={"module": module_id,
                                "fault_profile": fault_profile,
                                "seed": seed, "artifact": "resilience"})
                 for module_id in ids]
        run = engine.run(units, quarantine=True)
        return ResilienceReport(
            modules=run.values,
            quarantined=[(outcome.unit_id.removeprefix("resilience/"),
                          outcome.error or "unknown")
                         for outcome in run.quarantined],
            stalled=[(stall.unit_id.removeprefix("resilience/"),
                      stall.describe())
                     for stall in run.stalled])
    return ResilienceReport(modules=[
        run_module_resilience(module_id, fault_profile, seed, config)
        for module_id in ids])
