"""Evaluation harness: regenerates the paper's tables and figures."""

from .ablations import (run_ablations, run_baseline_ablation,
                        run_dummy_count_ablation, run_hammer_mode_ablation,
                        run_mitigation_ablation)
from .fig8 import Fig8Result, run_fig8, run_fig8_many
from .fig9 import REPRESENTATIVE_MODULES, Fig9Result, run_fig9
from .fig10 import Fig10Result, run_fig10
from .report import format_pct, render_histogram, render_series, render_table
from .resilience import (RESILIENCE_MODULES, ModuleResilience,
                         ResilienceReport, hardened_inference_config,
                         run_module_resilience, run_resilience)
from .runner import (ModuleEvaluation, evaluate_baseline, evaluate_module,
                     evaluate_module_unit, evaluate_modules)
from .scale import QUICK, STANDARD, EvalScale, get_scale
from .survey import ModuleSurvey, SurveyResult, run_survey
from .table1 import (TABLE1_REPRESENTATIVES, Table1Result, run_table1,
                     run_table1_module)

__all__ = [
    "EvalScale",
    "Fig8Result",
    "Fig9Result",
    "Fig10Result",
    "ModuleEvaluation",
    "ModuleResilience",
    "ModuleSurvey",
    "ResilienceReport",
    "SurveyResult",
    "QUICK",
    "REPRESENTATIVE_MODULES",
    "RESILIENCE_MODULES",
    "STANDARD",
    "TABLE1_REPRESENTATIVES",
    "Table1Result",
    "evaluate_baseline",
    "evaluate_module",
    "evaluate_module_unit",
    "evaluate_modules",
    "format_pct",
    "get_scale",
    "hardened_inference_config",
    "render_histogram",
    "render_series",
    "render_table",
    "run_ablations",
    "run_baseline_ablation",
    "run_dummy_count_ablation",
    "run_fig8",
    "run_fig8_many",
    "run_fig9",
    "run_fig10",
    "run_hammer_mode_ablation",
    "run_mitigation_ablation",
    "run_module_resilience",
    "run_resilience",
    "run_survey",
    "run_table1",
    "run_table1_module",
]
