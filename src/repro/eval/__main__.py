"""Command-line entry point: ``python -m repro.eval <artifact>``.

Artifacts: table1, fig8, fig9, fig10, ablations, survey, resilience.
``--modules`` selects specific Table 1 modules (default: one
representative per TRR version; pass ``--modules all`` for the full
45-module run).  ``resilience`` runs the chaos harness: hardened
inference under injected faults (``--faults`` picks the fault profile).

``--workers N`` shards module-level work units over N processes through
:mod:`repro.parallel` (default: one per CPU); ``--workers 1`` runs the
sequential code path unchanged.  Artifact bytes are identical for any
worker count.

Rendered artifacts go to **stdout** and are deterministic for a given
artifact/scale/module selection; progress and timing go to **stderr**
as structured ``key=value`` lines (suppressed entirely by ``--quiet``),
each stamped with a monotonic ``elapsed_ms`` so long sweeps show
per-event latency in place.

``--history PATH`` appends one row per run (manifest, flattened
metrics, span wall-clocks, and — with ``--profile`` — per-opcode
command-bus attribution) to an append-only run-history store; gate it
across runs with ``python -m repro.obs.history PATH --gate``.

``--telemetry DIR`` publishes live progress into a spool directory
readable mid-run by ``python -m repro.obs.serve DIR`` (curl
``/metrics``, ``/progress``, ``/spans``); ``--stall-deadline S`` arms
the watchdog that flags units whose command counters stop advancing.
``--profile`` attributes host wall time per DDR opcode and prints the
attribution table to stderr.  All three are side channels: artifact
bytes on stdout are unaffected.

``--evidence PATH`` records the run's inference-provenance ledger —
every accepted/rejected/degraded decision with its supporting
observations and commands-to-discovery stamps — and writes it as a
JSONL sidecar at PATH (query it with ``python -m repro.obs.evidence``).
The ledger folds in unit submission order, so the sidecar is
byte-identical for any worker count and on warm cache replays.

``--cache DIR`` (default: the ``REPRO_CACHE`` environment variable)
serves work units from a content-addressed result store and publishes
fresh results into it, so re-running an identical sweep — including
resuming one that was killed mid-run (``--resume`` is the explicit
alias) — skips every already-computed unit.  Artifact bytes, folded
metrics, and history metrics are identical with or without the cache.
``--no-cache`` overrides the environment default; ``--cache-verify``
re-executes one sampled hit per run and fails loudly if the stored
envelope diverges.  Maintain stores with ``python -m repro.cache``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from ..cache import ResultCache
from ..obs import (CommandProfiler, MetricsRegistry, RunHistory,
                   SpanTracker, StructuredLog, TelemetryConfig,
                   build_manifest)
from ..parallel import default_workers
from ..vendors import all_modules
from . import (REPRESENTATIVE_MODULES, TABLE1_REPRESENTATIVES, get_scale,
               run_ablations, run_fig8, run_fig8_many, run_fig9, run_fig10,
               run_table1)
from .fig8 import SWEEPS


def _module_ids(argument: str | None, default: tuple[str, ...]) -> list[str]:
    if argument is None:
        return list(default)
    if argument == "all":
        return [spec.module_id for spec in all_modules()]
    return argument.split(",")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.eval")
    parser.add_argument("artifact",
                        choices=["table1", "fig8", "fig9", "fig10",
                                 "ablations", "survey", "resilience"])
    parser.add_argument("--modules", default=None,
                        help="comma-separated module ids, or 'all'")
    parser.add_argument("--scale", default="standard",
                        choices=["standard", "quick"])
    parser.add_argument("--faults", default="default",
                        help="fault profile for the resilience artifact")
    parser.add_argument("--workers", type=int, default=default_workers(),
                        help="process-pool width for module-level work "
                             "units (default: CPU count; 1 = the "
                             "sequential code path)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress/timing output on stderr "
                             "(stdout artifact bytes are unaffected)")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="append this run (manifest, metrics, span "
                             "wall-clocks) to a run-history store")
    parser.add_argument("--telemetry", default=None, metavar="DIR",
                        help="publish live progress events into this "
                             "spool directory (serve it with python -m "
                             "repro.obs.serve DIR)")
    parser.add_argument("--telemetry-interval", type=float, default=1.0,
                        metavar="S", help="heartbeat period in seconds "
                                          "(default 1.0)")
    parser.add_argument("--stall-deadline", type=float, default=None,
                        metavar="S",
                        help="flag units whose command counters do not "
                             "advance within S seconds (requires "
                             "--telemetry)")
    parser.add_argument("--profile", action="store_true",
                        help="attribute host wall time per DDR opcode; "
                             "table goes to stderr, totals to --history")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="serve units from (and publish into) a "
                             "content-addressed result store (default: "
                             "$REPRO_CACHE when set)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache even when "
                             "$REPRO_CACHE is set")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep from its "
                             "cache (explicit alias: requires --cache "
                             "or $REPRO_CACHE)")
    parser.add_argument("--cache-verify", action="store_true",
                        help="re-execute one sampled cache hit and "
                             "fail if its stored envelope diverges")
    parser.add_argument("--evidence", default=None, metavar="PATH",
                        help="write the inference-provenance ledger "
                             "(decision nodes + commands-to-discovery) "
                             "as a JSONL sidecar at PATH")
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    workers = args.workers
    log = StructuredLog(enabled=not args.quiet, elapsed=True)
    metrics = MetricsRegistry()
    spans = SpanTracker()
    profiler = CommandProfiler(spans=spans) if args.profile else None
    telemetry = None
    if args.telemetry:
        telemetry = TelemetryConfig(
            spool=args.telemetry, run_id=f"eval.{args.artifact}",
            interval_s=args.telemetry_interval,
            stall_deadline_s=args.stall_deadline)
        log.info("telemetry-enabled", spool=args.telemetry,
                 interval_s=args.telemetry_interval,
                 stall_deadline_s=args.stall_deadline or "off")
    elif args.stall_deadline is not None:
        parser.error("--stall-deadline requires --telemetry")
    cache_dir = args.cache or os.environ.get("REPRO_CACHE") or None
    if args.no_cache:
        cache_dir = None
    if args.resume and cache_dir is None:
        parser.error("--resume requires --cache DIR (or $REPRO_CACHE): "
                     "resuming replays completed units from the result "
                     "store, so there must be one to resume from")
    if args.cache_verify and cache_dir is None:
        parser.error("--cache-verify requires --cache DIR "
                     "(or $REPRO_CACHE)")
    cache = None
    if cache_dir is not None:
        cache = ResultCache(cache_dir, verify=args.cache_verify)
        log.info("cache-enabled", store=cache_dir,
                 resume=args.resume or False,
                 verify=args.cache_verify or False)
    evidence = None
    if args.evidence:
        from ..obs.evidence import EvidenceLedger
        evidence = EvidenceLedger()
        log.info("evidence-enabled", sidecar=args.evidence)
    manifest = build_manifest(scale=scale.name, artifact=args.artifact,
                              include_time=False)
    log.info("run-start", artifact=args.artifact, scale=scale.name,
             modules=args.modules or "default", workers=workers,
             git=manifest["git"])

    from .engine import EngineConfig
    engine = EngineConfig(workers=workers, log=log, metrics=metrics,
                          telemetry=telemetry, profiler=profiler,
                          cache=cache,
                          evidence=evidence).harness_kwargs()
    started = time.time()
    with spans.span(args.artifact, scale=scale.name, workers=workers):
        if args.artifact == "resilience":
            from .resilience import RESILIENCE_MODULES, run_resilience
            result = run_resilience(_module_ids(args.modules,
                                                RESILIENCE_MODULES),
                                    fault_profile=args.faults, **engine)
            print(result.render())
        elif args.artifact == "survey":
            from .survey import run_survey
            result = run_survey(_module_ids(args.modules,
                                            TABLE1_REPRESENTATIVES), scale)
            print(result.render())
        elif args.artifact == "table1":
            result = run_table1(_module_ids(args.modules,
                                            TABLE1_REPRESENTATIVES), scale,
                                **engine)
            print(result.render())
        elif args.artifact == "fig8":
            module_ids = _module_ids(args.modules, tuple(SWEEPS))
            for result in run_fig8_many(module_ids, scale, **engine):
                print(result.render())
                print()
        elif args.artifact == "fig9":
            result = run_fig9(_module_ids(args.modules,
                                          REPRESENTATIVE_MODULES), scale,
                              **engine)
            print(result.render())
        elif args.artifact == "fig10":
            result = run_fig10(_module_ids(args.modules,
                                           REPRESENTATIVE_MODULES), scale,
                               **engine)
            print(result.render())
        else:
            results = run_ablations(scale, **engine)
            print("\n\n".join(result.render() for result in results))
    wall = time.time() - started
    log.info("run-done", artifact=args.artifact, scale=scale.name,
             workers=workers, seconds=round(wall, 1))
    if cache is not None:
        summary = cache.summary()
        log.info("cache-summary", **summary)
    if profiler is not None and not args.quiet:
        sys.stderr.write("command-bus profile:\n"
                         + profiler.render(wall_s=wall) + "\n")
    if evidence is not None:
        # Fold the provenance counters into the registry *before* the
        # history row is recorded so the sidecar and the history agree
        # on the commands-to-discovery totals.
        from ..obs.evidence import write_evidence
        evidence.emit_metrics(metrics)
        write_evidence(args.evidence, evidence,
                       meta={"artifact": args.artifact,
                             "scale": scale.name,
                             "modules": args.modules or "default"})
        log.info("evidence-written", sidecar=args.evidence,
                 **evidence.summary())
    if args.history:
        row_manifest = build_manifest(
            scale=scale.name, artifact=args.artifact,
            modules=args.modules or "default", workers=workers)
        # Cache accounting rides in ``extra`` — outside the fields the
        # history gate compares, so warm and cold rows gate alike.
        RunHistory(args.history).record(
            f"eval.{args.artifact}", manifest=row_manifest,
            metrics=metrics, spans=spans, wall_s=wall,
            profile=profiler,
            extra={"cache": cache.summary()} if cache else None)
        log.info("history-recorded", store=args.history,
                 kind=f"eval.{args.artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
