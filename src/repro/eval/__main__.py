"""Command-line entry point: ``python -m repro.eval <artifact>``.

Artifacts: table1, fig8, fig9, fig10, ablations, survey, resilience.
``--modules`` selects specific Table 1 modules (default: one
representative per TRR version; pass ``--modules all`` for the full
45-module run).  ``resilience`` runs the chaos harness: hardened
inference under injected faults (``--faults`` picks the fault profile).

Rendered artifacts go to **stdout** and are deterministic for a given
artifact/scale/module selection; progress and timing go to **stderr**
as structured ``key=value`` lines (suppressed entirely by ``--quiet``).
"""

from __future__ import annotations

import argparse
import sys
import time

from ..obs import StructuredLog, build_manifest
from ..vendors import all_modules
from . import (REPRESENTATIVE_MODULES, TABLE1_REPRESENTATIVES, get_scale,
               run_baseline_ablation, run_dummy_count_ablation, run_fig8,
               run_fig9, run_fig10, run_hammer_mode_ablation,
               run_mitigation_ablation, run_table1)
from .fig8 import SWEEPS


def _module_ids(argument: str | None, default: tuple[str, ...]) -> list[str]:
    if argument is None:
        return list(default)
    if argument == "all":
        return [spec.module_id for spec in all_modules()]
    return argument.split(",")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.eval")
    parser.add_argument("artifact",
                        choices=["table1", "fig8", "fig9", "fig10",
                                 "ablations", "survey", "resilience"])
    parser.add_argument("--modules", default=None,
                        help="comma-separated module ids, or 'all'")
    parser.add_argument("--scale", default="standard",
                        choices=["standard", "quick"])
    parser.add_argument("--faults", default="default",
                        help="fault profile for the resilience artifact")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress/timing output on stderr "
                             "(stdout artifact bytes are unaffected)")
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    log = StructuredLog(enabled=not args.quiet)
    manifest = build_manifest(scale=scale.name, artifact=args.artifact,
                              include_time=False)
    log.info("run-start", artifact=args.artifact, scale=scale.name,
             modules=args.modules or "default", git=manifest["git"])

    started = time.time()
    if args.artifact == "resilience":
        from .resilience import RESILIENCE_MODULES, run_resilience
        result = run_resilience(_module_ids(args.modules,
                                            RESILIENCE_MODULES),
                                fault_profile=args.faults)
        print(result.render())
    elif args.artifact == "survey":
        from .survey import run_survey
        result = run_survey(_module_ids(args.modules,
                                        TABLE1_REPRESENTATIVES), scale)
        print(result.render())
    elif args.artifact == "table1":
        result = run_table1(_module_ids(args.modules,
                                        TABLE1_REPRESENTATIVES), scale)
        print(result.render())
    elif args.artifact == "fig8":
        for module_id in _module_ids(args.modules, tuple(SWEEPS)):
            print(run_fig8(module_id, scale).render())
            print()
    elif args.artifact == "fig9":
        result = run_fig9(_module_ids(args.modules,
                                      REPRESENTATIVE_MODULES), scale)
        print(result.render())
    elif args.artifact == "fig10":
        result = run_fig10(_module_ids(args.modules,
                                       REPRESENTATIVE_MODULES), scale)
        print(result.render())
    else:
        print(run_hammer_mode_ablation(scale).render())
        print()
        print(run_dummy_count_ablation(scale).render())
        print()
        print(run_baseline_ablation(scale).render())
        print()
        print(run_mitigation_ablation(scale).render())
    log.info("run-done", artifact=args.artifact, scale=scale.name,
             seconds=round(time.time() - started, 1))
    return 0


if __name__ == "__main__":
    sys.exit(main())
