"""Command-line entry point: ``python -m repro.eval <artifact>``.

Artifacts: table1, fig8, fig9, fig10, ablations, survey, resilience.
``--modules`` selects specific Table 1 modules (default: one
representative per TRR version; pass ``--modules all`` for the full
45-module run).  ``resilience`` runs the chaos harness: hardened
inference under injected faults (``--faults`` picks the fault profile).

``--workers N`` shards module-level work units over N processes through
:mod:`repro.parallel` (default: one per CPU); ``--workers 1`` runs the
sequential code path unchanged.  Artifact bytes are identical for any
worker count.

Rendered artifacts go to **stdout** and are deterministic for a given
artifact/scale/module selection; progress and timing go to **stderr**
as structured ``key=value`` lines (suppressed entirely by ``--quiet``).

``--history PATH`` appends one row per run (manifest, flattened
metrics, span wall-clocks) to an append-only run-history store; gate it
across runs with ``python -m repro.obs.history PATH --gate``.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..obs import (MetricsRegistry, RunHistory, SpanTracker, StructuredLog,
                   build_manifest)
from ..parallel import default_workers
from ..vendors import all_modules
from . import (REPRESENTATIVE_MODULES, TABLE1_REPRESENTATIVES, get_scale,
               run_ablations, run_fig8, run_fig8_many, run_fig9, run_fig10,
               run_table1)
from .fig8 import SWEEPS


def _module_ids(argument: str | None, default: tuple[str, ...]) -> list[str]:
    if argument is None:
        return list(default)
    if argument == "all":
        return [spec.module_id for spec in all_modules()]
    return argument.split(",")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.eval")
    parser.add_argument("artifact",
                        choices=["table1", "fig8", "fig9", "fig10",
                                 "ablations", "survey", "resilience"])
    parser.add_argument("--modules", default=None,
                        help="comma-separated module ids, or 'all'")
    parser.add_argument("--scale", default="standard",
                        choices=["standard", "quick"])
    parser.add_argument("--faults", default="default",
                        help="fault profile for the resilience artifact")
    parser.add_argument("--workers", type=int, default=default_workers(),
                        help="process-pool width for module-level work "
                             "units (default: CPU count; 1 = the "
                             "sequential code path)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress/timing output on stderr "
                             "(stdout artifact bytes are unaffected)")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="append this run (manifest, metrics, span "
                             "wall-clocks) to a run-history store")
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    workers = args.workers
    log = StructuredLog(enabled=not args.quiet)
    metrics = MetricsRegistry()
    spans = SpanTracker()
    manifest = build_manifest(scale=scale.name, artifact=args.artifact,
                              include_time=False)
    log.info("run-start", artifact=args.artifact, scale=scale.name,
             modules=args.modules or "default", workers=workers,
             git=manifest["git"])

    started = time.time()
    with spans.span(args.artifact, scale=scale.name, workers=workers):
        if args.artifact == "resilience":
            from .resilience import RESILIENCE_MODULES, run_resilience
            result = run_resilience(_module_ids(args.modules,
                                                RESILIENCE_MODULES),
                                    fault_profile=args.faults,
                                    workers=workers, log=log,
                                    metrics=metrics)
            print(result.render())
        elif args.artifact == "survey":
            from .survey import run_survey
            result = run_survey(_module_ids(args.modules,
                                            TABLE1_REPRESENTATIVES), scale)
            print(result.render())
        elif args.artifact == "table1":
            result = run_table1(_module_ids(args.modules,
                                            TABLE1_REPRESENTATIVES), scale,
                                workers=workers, log=log, metrics=metrics)
            print(result.render())
        elif args.artifact == "fig8":
            module_ids = _module_ids(args.modules, tuple(SWEEPS))
            for result in run_fig8_many(module_ids, scale,
                                        workers=workers, log=log,
                                        metrics=metrics):
                print(result.render())
                print()
        elif args.artifact == "fig9":
            result = run_fig9(_module_ids(args.modules,
                                          REPRESENTATIVE_MODULES), scale,
                              workers=workers, log=log, metrics=metrics)
            print(result.render())
        elif args.artifact == "fig10":
            result = run_fig10(_module_ids(args.modules,
                                           REPRESENTATIVE_MODULES), scale,
                               workers=workers, log=log, metrics=metrics)
            print(result.render())
        else:
            results = run_ablations(scale, workers=workers, log=log,
                                    metrics=metrics)
            print("\n\n".join(result.render() for result in results))
    wall = round(time.time() - started, 1)
    log.info("run-done", artifact=args.artifact, scale=scale.name,
             workers=workers, seconds=wall)
    if args.history:
        row_manifest = build_manifest(
            scale=scale.name, artifact=args.artifact,
            modules=args.modules or "default", workers=workers)
        RunHistory(args.history).record(
            f"eval.{args.artifact}", manifest=row_manifest,
            metrics=metrics, spans=spans, wall_s=time.time() - started)
        log.info("history-recorded", store=args.history,
                 kind=f"eval.{args.artifact}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
