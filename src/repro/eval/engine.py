"""Shared execution-engine wiring for the eval harnesses.

Every harness used to repeat the same block: test whether any
observability instrument (or a worker count above one) requires routing
through :func:`repro.parallel.run_units`, then thread six keyword
arguments into it.  :class:`EngineConfig` owns that decision and the
threading in one place; the harnesses keep their public signatures and
build one of these from their keyword arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..parallel import ParallelRun, run_units


@dataclass
class EngineConfig:
    """One eval run's execution engine: worker count + instruments.

    *metrics* / *telemetry* / *profiler* / *cache* / *evidence* are the
    side-channel instruments :func:`repro.parallel.run_units` folds in
    submission order; *log* is the stderr progress logger.  All of them
    leave artifact bytes unchanged, so a harness only needs to know one
    thing: :attr:`active` — whether to shard through the engine at all
    or stay on the bare sequential path.
    """

    workers: int = 1
    log: Any = None
    metrics: Any = None
    telemetry: Any = None
    profiler: Any = None
    cache: Any = None
    evidence: Any = None

    @property
    def active(self) -> bool:
        """Route work units through :func:`run_units`?

        True when sharding (``workers > 1``) or any instrument needs
        the engine's submission-order fold.  ``workers=1`` with no
        instruments stays on the harness's bare sequential loop — the
        exact historical code path.
        """
        return (self.workers > 1
                or self.metrics is not None
                or self.telemetry is not None
                or self.profiler is not None
                or self.cache is not None
                or self.evidence is not None)

    def run(self, units: Sequence, **kwargs) -> ParallelRun:
        """Execute *units* with this engine's instruments threaded in."""
        return run_units(units, self.workers, log=self.log,
                         metrics=self.metrics, telemetry=self.telemetry,
                         profiler=self.profiler, cache=self.cache,
                         evidence=self.evidence, **kwargs)

    def harness_kwargs(self) -> dict:
        """The keyword arguments the harness entry points accept."""
        return dict(workers=self.workers, log=self.log,
                    metrics=self.metrics, telemetry=self.telemetry,
                    profiler=self.profiler, cache=self.cache,
                    evidence=self.evidence)
