"""Plain-text table and series rendering for the evaluation harness."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Fixed-width text table (all cells stringified)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(header.ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in cells:
        lines.append(" | ".join(value.ljust(width)
                                for value, width in zip(row, widths)))
    return "\n".join(lines)


def render_series(label: str, pairs: Sequence[tuple]) -> str:
    """One x->y series as aligned text (for figure-style outputs)."""
    lines = [label]
    for x, y in pairs:
        lines.append(f"  {x!s:>12} : {y}")
    return "\n".join(lines)


def render_histogram(label: str, counts: dict, width: int = 40) -> str:
    """Log-ish bar rendering of a {bucket: count} histogram."""
    lines = [label]
    if not counts:
        lines.append("  (empty)")
        return "\n".join(lines)
    peak = max(counts.values())
    for bucket in sorted(counts):
        count = counts[bucket]
        bar = "#" * max(1, round(width * count / peak)) if count else ""
        lines.append(f"  {bucket!s:>6} | {count:>10} {bar}")
    return "\n".join(lines)


def format_pct(fraction: float) -> str:
    return f"{100 * fraction:.1f}%"
