"""Time units and DDR4 constants.

All simulator timestamps are integer **picoseconds**.  Integer arithmetic
keeps the virtual clock exact: experiments compare "elapsed time since a
row was refreshed" against per-cell retention times, and floating-point
drift would blur exactly the boundary the retention side channel relies on.

Helper constructors (:func:`ns`, :func:`us`, :func:`ms`, :func:`seconds`)
accept floats for convenience and round to the nearest picosecond.
"""

from __future__ import annotations

#: Picoseconds per unit.
PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


def ns(value: float) -> int:
    """Return *value* nanoseconds as integer picoseconds."""
    return round(value * PS_PER_NS)


def us(value: float) -> int:
    """Return *value* microseconds as integer picoseconds."""
    return round(value * PS_PER_US)


def ms(value: float) -> int:
    """Return *value* milliseconds as integer picoseconds."""
    return round(value * PS_PER_MS)


def seconds(value: float) -> int:
    """Return *value* seconds as integer picoseconds."""
    return round(value * PS_PER_S)


def to_ms(picoseconds: int) -> float:
    """Convert integer picoseconds to float milliseconds."""
    return picoseconds / PS_PER_MS


def to_us(picoseconds: int) -> float:
    """Convert integer picoseconds to float microseconds."""
    return picoseconds / PS_PER_US


def to_ns(picoseconds: int) -> float:
    """Convert integer picoseconds to float nanoseconds."""
    return picoseconds / PS_PER_NS


#: DDR4 nominal refresh interval between two REF commands (JESD79-4).
TREFI_PS = us(7.8)

#: Nominal full-chip refresh period: every row refreshed once per window.
TREFW_PS = ms(64.0)

#: Number of REF commands the controller issues per 64 ms refresh window.
REFS_PER_WINDOW = TREFW_PS // TREFI_PS  # = 8205 at 7.8 us; JEDEC nominal 8192

#: JEDEC nominal REF count per window used throughout the paper (8K).
NOMINAL_REFS_PER_WINDOW = 8192
