"""SECDED Hamming code over 64-bit datawords — the (72,64) memory ECC.

The standard DIMM-side protection the paper evaluates against (§7.4):
single-error-correct, double-error-detect.  Implemented as a shortened
Hamming(127,120) plus an overall parity bit:

* codeword bit positions 1..71 follow classic Hamming numbering: the
  power-of-two positions hold check bits, the rest hold the 64 data bits;
* position 0 holds the overall parity of all 72 bits;
* a non-zero syndrome with odd overall parity locates a single flipped
  bit; a non-zero syndrome with even parity signals an uncorrectable
  (>= 2-bit) error.

Three or more flips defeat the code silently or with a miscorrection —
exactly the failure mode the U-TRR patterns trigger.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

DATA_BITS = 64
CODE_BITS = 72
_CHECK_POSITIONS = (1, 2, 4, 8, 16, 32, 64)
_DATA_POSITIONS = tuple(p for p in range(1, CODE_BITS)
                        if p not in _CHECK_POSITIONS)
assert len(_DATA_POSITIONS) == DATA_BITS


class DecodeStatus(enum.Enum):
    CLEAN = "clean"                #: no error observed
    CORRECTED = "corrected"        #: single bit corrected
    DETECTED = "detected"          #: uncorrectable error flagged
    #: The decoder "corrected" the wrong bit or saw nothing — data is
    #: silently wrong (the >= 3-flip failure mode of 7.4).
    SILENT_CORRUPTION = "silent-corruption"


@dataclass(frozen=True)
class DecodeResult:
    status: DecodeStatus
    data: np.ndarray               #: 64 decoded data bits
    corrected_position: int | None = None


def _as_bits(array, length: int, name: str) -> np.ndarray:
    bits = np.asarray(array, dtype=np.uint8)
    if bits.shape != (length,):
        raise ConfigError(f"{name} must be {length} bits")
    if bits.size and int(bits.max(initial=0)) > 1:
        raise ConfigError(f"{name} bits must be 0/1")
    return bits


def encode(data_bits) -> np.ndarray:
    """Encode 64 data bits into a 72-bit SECDED codeword."""
    data = _as_bits(data_bits, DATA_BITS, "data")
    code = np.zeros(CODE_BITS, dtype=np.uint8)
    code[list(_DATA_POSITIONS)] = data
    for check in _CHECK_POSITIONS:
        mask = [p for p in range(1, CODE_BITS) if p & check and p != check]
        code[check] = code[mask].sum() % 2
    code[0] = code[1:].sum() % 2
    return code


def _syndrome(code: np.ndarray) -> int:
    syndrome = 0
    for check in _CHECK_POSITIONS:
        mask = [p for p in range(1, CODE_BITS) if p & check]
        if code[mask].sum() % 2:
            syndrome |= check
    return syndrome


def decode(code_bits) -> DecodeResult:
    """Decode a 72-bit word; classifies the outcome truthfully.

    A >= 3-bit error may alias to a valid or single-error codeword; the
    decoder then reports CORRECTED/CLEAN with wrong data.  Use
    :func:`classify_flips` when the injected error is known, to label
    such outcomes as silent corruption.
    """
    code = _as_bits(code_bits, CODE_BITS, "codeword").copy()
    syndrome = _syndrome(code)
    parity_mismatch = bool(code.sum() % 2)
    if syndrome == 0 and not parity_mismatch:
        return DecodeResult(DecodeStatus.CLEAN, code[list(_DATA_POSITIONS)])
    if parity_mismatch:
        # Odd number of flips: treat as a single error at `syndrome`
        # (syndrome 0 means the overall parity bit itself flipped).
        position = syndrome
        if position >= CODE_BITS:
            return DecodeResult(DecodeStatus.DETECTED,
                                code[list(_DATA_POSITIONS)])
        code[position] ^= 1
        return DecodeResult(DecodeStatus.CORRECTED,
                            code[list(_DATA_POSITIONS)],
                            corrected_position=position)
    # Even parity with non-zero syndrome: classic double-error detection.
    return DecodeResult(DecodeStatus.DETECTED, code[list(_DATA_POSITIONS)])


def classify_flips(flip_positions) -> DecodeStatus:
    """Ground-truth outcome of SECDED against a known flip set.

    Encodes a word, injects the flips, decodes, and compares the decoded
    data against the original — labelling wrong-but-confident outcomes
    as SILENT_CORRUPTION.  Position indices are codeword positions
    (0..71).
    """
    flips = sorted(set(int(p) for p in flip_positions))
    if any(not 0 <= p < CODE_BITS for p in flips):
        raise ConfigError("flip positions must be within the codeword")
    rng = np.random.default_rng(len(flips))
    data = rng.integers(0, 2, size=DATA_BITS, dtype=np.uint8)
    code = encode(data)
    for position in flips:
        code[position] ^= 1
    result = decode(code)
    if not flips:
        return DecodeStatus.CLEAN
    if result.status is DecodeStatus.DETECTED:
        return DecodeStatus.DETECTED
    if np.array_equal(result.data, data):
        return DecodeStatus.CORRECTED
    return DecodeStatus.SILENT_CORRUPTION
