"""GF(2^8) arithmetic for Reed-Solomon codes.

Log/antilog-table implementation over the primitive polynomial
x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field used by most storage and
memory RS codes.
"""

from __future__ import annotations

from ..errors import DecodingError

PRIMITIVE_POLY = 0x11D
FIELD_SIZE = 256

_EXP = [0] * (2 * FIELD_SIZE)
_LOG = [0] * FIELD_SIZE


def _build_tables() -> None:
    value = 1
    for power in range(FIELD_SIZE - 1):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    for power in range(FIELD_SIZE - 1, 2 * FIELD_SIZE):
        _EXP[power] = _EXP[power - (FIELD_SIZE - 1)]


_build_tables()


def add(a: int, b: int) -> int:
    """Addition = subtraction = XOR in characteristic 2."""
    return a ^ b


def multiply(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def divide(a: int, b: int) -> int:
    if b == 0:
        raise DecodingError("division by zero in GF(256)")
    if a == 0:
        return 0
    return _EXP[(_LOG[a] - _LOG[b]) % (FIELD_SIZE - 1)]


def power(a: int, exponent: int) -> int:
    if a == 0:
        if exponent == 0:
            return 1
        return 0
    return _EXP[(_LOG[a] * exponent) % (FIELD_SIZE - 1)]


def inverse(a: int) -> int:
    if a == 0:
        raise DecodingError("zero has no inverse in GF(256)")
    return _EXP[(FIELD_SIZE - 1) - _LOG[a]]


def generator(power_of_alpha: int = 1) -> int:
    """alpha^k, with alpha = 2 the field generator."""
    return _EXP[power_of_alpha % (FIELD_SIZE - 1)]


# -- polynomial helpers (coefficient lists, lowest degree first) -------------

def poly_multiply(a: list[int], b: list[int]) -> list[int]:
    result = [0] * (len(a) + len(b) - 1)
    for i, coeff_a in enumerate(a):
        if coeff_a == 0:
            continue
        for j, coeff_b in enumerate(b):
            result[i + j] ^= multiply(coeff_a, coeff_b)
    return result


def poly_evaluate(poly: list[int], x: int) -> int:
    """Horner evaluation at *x* (coefficients lowest-first)."""
    result = 0
    for coeff in reversed(poly):
        result = multiply(result, x) ^ coeff
    return result


def poly_scale(poly: list[int], factor: int) -> list[int]:
    return [multiply(coeff, factor) for coeff in poly]


def poly_add(a: list[int], b: list[int]) -> list[int]:
    length = max(len(a), len(b))
    result = [0] * length
    for i, coeff in enumerate(a):
        result[i] ^= coeff
    for i, coeff in enumerate(b):
        result[i] ^= coeff
    return result
