"""Chipkill: symbol-based memory ECC (§7.4).

Chipkill-correct codes view a codeword as *symbols*, one per DRAM chip,
and are conventionally dimensioned to correct one symbol error (a whole
chip failing) and detect two (SSC-DSD).  Because the U-TRR access
patterns flip bits at arbitrary positions, their flips land in arbitrary
*symbols*; three or more affected symbols exceed the code's guarantees.

The model classifies a flip set against a symbol layout: which symbols
are touched, and whether the count is within correct / detect / beyond
guarantees.  A Reed-Solomon companion (``chipkill_rs``) realizes an
actual SSC-DSD code over GF(256) so the classification is backed by a
real decoder in the tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigError
from .reed_solomon import ReedSolomon


class ChipkillOutcome(enum.Enum):
    CLEAN = "clean"
    CORRECTED = "corrected"      #: flips confined to one symbol
    DETECTED = "detected"        #: exactly two symbols affected
    #: Three or more symbols affected: beyond SSC-DSD guarantees; the
    #: code may miscorrect or miss the error entirely.
    BEYOND_GUARANTEE = "beyond-guarantee"


@dataclass(frozen=True)
class ChipkillLayout:
    """Symbol geometry of a chipkill dataword."""

    #: Bits per symbol = data pins per chip (x4 or x8 devices).
    symbol_bits: int = 4
    #: Data bits protected together (an 8-byte dataword).
    data_bits: int = 64

    def __post_init__(self) -> None:
        if self.symbol_bits not in (4, 8):
            raise ConfigError("chipkill symbols are 4 or 8 bits (x4/x8)")
        if self.data_bits % self.symbol_bits:
            raise ConfigError("data_bits must be a whole number of symbols")

    @property
    def data_symbols(self) -> int:
        return self.data_bits // self.symbol_bits

    def symbols_hit(self, flip_positions) -> set[int]:
        """Symbol indices touched by data-bit flips (0..data_bits)."""
        symbols = set()
        for position in flip_positions:
            if not 0 <= position < self.data_bits:
                raise ConfigError(
                    f"flip position {position} outside the dataword")
            symbols.add(position // self.symbol_bits)
        return symbols

    def classify(self, flip_positions) -> ChipkillOutcome:
        """SSC-DSD outcome for a known flip set."""
        hit = self.symbols_hit(flip_positions)
        if not hit:
            return ChipkillOutcome.CLEAN
        if len(hit) == 1:
            return ChipkillOutcome.CORRECTED
        if len(hit) == 2:
            return ChipkillOutcome.DETECTED
        return ChipkillOutcome.BEYOND_GUARANTEE


def chipkill_rs(layout: ChipkillLayout | None = None) -> ReedSolomon:
    """A concrete SSC-DSD Reed-Solomon code matching *layout*.

    x8 symbols map directly onto GF(256): RS(n, k) with 4 parity symbols
    corrects 1 and detects (at least) 2 symbol errors over an 8-symbol
    dataword.  (x4 layouts pack two 4-bit symbols per field element in
    real designs; the x8 realization is used for the executable check.)
    """
    layout = layout or ChipkillLayout(symbol_bits=8)
    data_symbols = layout.data_bits // 8
    return ReedSolomon(data_symbols + 4, data_symbols)
