"""Error-correction substrate: SECDED, Reed-Solomon, Chipkill (§7.4)."""

from .analysis import (EccAssessment, assess_ecc, dataword_flip_counts,
                       required_rs_parity_symbols,
                       verify_chipkill_with_rs)
from .chipkill import ChipkillLayout, ChipkillOutcome, chipkill_rs
from .hamming import (CODE_BITS, DATA_BITS, DecodeResult, DecodeStatus,
                      classify_flips, decode, encode)
from .reed_solomon import ReedSolomon, RSDecodeOutcome

__all__ = [
    "CODE_BITS",
    "ChipkillLayout",
    "ChipkillOutcome",
    "DATA_BITS",
    "DecodeResult",
    "DecodeStatus",
    "EccAssessment",
    "RSDecodeOutcome",
    "ReedSolomon",
    "assess_ecc",
    "chipkill_rs",
    "classify_flips",
    "dataword_flip_counts",
    "decode",
    "encode",
    "required_rs_parity_symbols",
    "verify_chipkill_with_rs",
]
