"""Reed-Solomon codes over GF(2^8).

Systematic RS(n, k) encoder and a Berlekamp-Massey / Chien / Forney
decoder correcting up to t = (n-k)//2 symbol errors.  §7.4's conclusion
— detecting (and correcting half of) the 7-bit-flip worst case in one
8-byte dataword needs at least 7 parity-check symbols — is exercised
directly by the benchmarks using these codes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, DecodingError
from . import gf256


@dataclass(frozen=True)
class RSDecodeOutcome:
    data: list[int]
    corrected_positions: tuple[int, ...]

    @property
    def corrections(self) -> int:
        return len(self.corrected_positions)


class ReedSolomon:
    """RS(n, k) over GF(256), systematic, alpha = 2, fcr = 0."""

    def __init__(self, n: int, k: int) -> None:
        if not 0 < k < n <= 255:
            raise ConfigError("need 0 < k < n <= 255")
        self.n = n
        self.k = k
        self.num_parity = n - k
        self.t = self.num_parity // 2
        generator = [1]
        for i in range(self.num_parity):
            generator = gf256.poly_multiply(
                generator, [gf256.power(2, i), 1])
        self._generator = generator  # lowest degree first

    # -- encoding -------------------------------------------------------------

    def encode(self, data: list[int]) -> list[int]:
        """Return the systematic codeword ``data + parity``."""
        if len(data) != self.k:
            raise ConfigError(f"data must hold {self.k} symbols")
        if any(not 0 <= symbol <= 255 for symbol in data):
            raise ConfigError("symbols must be bytes")
        # Synthetic division of data * x^(n-k) by g(x); the running
        # remainder becomes the parity.
        generator_hf = list(reversed(self._generator))  # highest first
        buffer = list(data) + [0] * self.num_parity
        for i in range(self.k):
            factor = buffer[i]
            if factor:
                for j in range(1, len(generator_hf)):
                    buffer[i + j] ^= gf256.multiply(generator_hf[j],
                                                    factor)
        return list(data) + buffer[self.k:]

    # -- decoding -------------------------------------------------------------

    def _syndromes(self, received: list[int]) -> list[int]:
        # Treat received[0] as the highest-degree coefficient.
        return [gf256.poly_evaluate(list(reversed(received)),
                                    gf256.power(2, i))
                for i in range(self.num_parity)]

    def decode(self, received: list[int]) -> RSDecodeOutcome:
        """Correct up to t symbol errors; raise DecodingError beyond."""
        if len(received) != self.n:
            raise ConfigError(f"codeword must hold {self.n} symbols")
        syndromes = self._syndromes(received)
        if not any(syndromes):
            return RSDecodeOutcome(list(received[:self.k]), ())
        locator = self._berlekamp_massey(syndromes)
        error_count = len(locator) - 1
        if error_count > self.t:
            raise DecodingError(
                f"more than t={self.t} symbol errors (locator degree "
                f"{error_count})")
        positions = self._chien_search(locator)
        if len(positions) != error_count:
            raise DecodingError("error locator has missing roots "
                                "(uncorrectable pattern)")
        corrected = list(received)
        magnitudes = self._forney(syndromes, locator, positions)
        for position, magnitude in zip(positions, magnitudes):
            corrected[self.n - 1 - position] ^= magnitude
        if any(self._syndromes(corrected)):
            raise DecodingError("correction failed re-check")
        return RSDecodeOutcome(
            corrected[:self.k],
            tuple(self.n - 1 - p for p in positions))

    @staticmethod
    def _berlekamp_massey(syndromes: list[int]) -> list[int]:
        """Textbook Berlekamp-Massey; returns lambda(x), lowest-first."""
        current = [1]          # C(x)
        backup = [1]           # B(x)
        length = 0             # L
        shift = 1              # m
        scale = 1              # b
        for index, syndrome in enumerate(syndromes):
            discrepancy = syndrome
            for i in range(1, length + 1):
                if i < len(current):
                    discrepancy ^= gf256.multiply(current[i],
                                                  syndromes[index - i])
            if discrepancy == 0:
                shift += 1
                continue
            adjustment = gf256.divide(discrepancy, scale)
            shifted = [0] * shift + gf256.poly_scale(backup, adjustment)
            if 2 * length <= index:
                backup = list(current)
                current = gf256.poly_add(current, shifted)
                length = index + 1 - length
                scale = discrepancy
                shift = 1
            else:
                current = gf256.poly_add(current, shifted)
                shift += 1
        while len(current) > 1 and current[-1] == 0:
            current = current[:-1]
        return current

    def _chien_search(self, locator: list[int]) -> list[int]:
        """Error positions as powers-of-alpha indices (0 = last symbol)."""
        positions = []
        for i in range(self.n):
            if gf256.poly_evaluate(locator,
                                   gf256.inverse(gf256.power(2, i))) == 0:
                positions.append(i)
        return positions

    def _forney(self, syndromes: list[int], locator: list[int],
                positions: list[int]) -> list[int]:
        # Error evaluator: omega(x) = S(x) * lambda(x) mod x^(n-k).
        omega = gf256.poly_multiply(list(syndromes), locator)[
            :self.num_parity]
        # Formal derivative in characteristic 2: odd-degree terms only.
        lam_derivative = [locator[degree] if degree % 2 == 1 else 0
                          for degree in range(1, len(locator))]
        magnitudes = []
        for position in positions:
            x = gf256.power(2, position)
            x_inverse = gf256.inverse(x)
            numerator = gf256.poly_evaluate(omega, x_inverse)
            denominator = gf256.poly_evaluate(lam_derivative, x_inverse)
            if denominator == 0:
                raise DecodingError("Forney denominator vanished")
            # fcr = 0: e_j = X_j * omega(X_j^-1) / lambda'(X_j^-1).
            magnitudes.append(
                gf256.multiply(x, gf256.divide(numerator, denominator)))
        return magnitudes
