"""Dataword-level analysis of RowHammer bit flips (§7.4, Figure 10).

Buckets attack-induced flip positions into 8-byte datawords, histograms
the per-word flip counts (Figure 10's distribution), and classifies each
word against SECDED and Chipkill protections.  The paper's conclusion —
one SECDED-correctable flip dominates, but words with 3..7 flips occur
and silently defeat both schemes — falls out of these counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import ConfigError
from .chipkill import ChipkillLayout, ChipkillOutcome
from .hamming import DecodeStatus, classify_flips

WORD_BITS = 64


def dataword_flip_counts(flips_by_row: dict[int, list[int]],
                         word_bits: int = WORD_BITS) -> Counter:
    """Figure 10's histogram: per-word flip count -> number of words.

    *flips_by_row* maps rows to flipped bit positions (as produced by
    :func:`repro.attacks.run_vulnerability_sweep`).  Words with zero
    flips are not counted (the paper plots words with >= 1 flip).
    """
    if word_bits <= 0:
        raise ConfigError("word_bits must be positive")
    histogram: Counter = Counter()
    for row, positions in flips_by_row.items():
        per_word: Counter = Counter()
        for position in positions:
            per_word[position // word_bits] += 1
        for count in per_word.values():
            histogram[count] += 1
    return histogram


@dataclass
class EccAssessment:
    """Outcome counts of SECDED / Chipkill against a flip population."""

    secded: Counter = field(default_factory=Counter)
    chipkill: Counter = field(default_factory=Counter)
    words_total: int = 0
    max_flips_in_word: int = 0

    @property
    def secded_defeated(self) -> int:
        """Words where SECDED mis- or un-corrects silently."""
        return self.secded[DecodeStatus.SILENT_CORRUPTION]

    @property
    def chipkill_defeated(self) -> int:
        return self.chipkill[ChipkillOutcome.BEYOND_GUARANTEE]


def _word_flip_offsets(flips_by_row: dict[int, list[int]],
                       word_bits: int):
    """Yield per-word flip offsets (positions within the word)."""
    for row, positions in flips_by_row.items():
        words: dict[int, list[int]] = {}
        for position in positions:
            words.setdefault(position // word_bits, []).append(
                position % word_bits)
        yield from words.values()


#: SECDED codeword data-bit positions, index i = data bit i (module-level
#: so repeated assessments reuse it).
from .hamming import _DATA_POSITIONS as _SECDED_DATA_POSITIONS  # noqa: E402


def assess_ecc(flips_by_row: dict[int, list[int]],
               layout: ChipkillLayout | None = None,
               word_bits: int = WORD_BITS) -> EccAssessment:
    """Classify every flipped dataword against SECDED and Chipkill.

    SECDED outcomes run the real (72,64) decoder with the word's flips
    injected at the corresponding codeword positions; Chipkill outcomes
    use the SSC-DSD symbol model.
    """
    layout = layout or ChipkillLayout(symbol_bits=4, data_bits=word_bits)
    assessment = EccAssessment()
    for offsets in _word_flip_offsets(flips_by_row, word_bits):
        assessment.words_total += 1
        assessment.max_flips_in_word = max(assessment.max_flips_in_word,
                                           len(offsets))
        codeword_positions = [_SECDED_DATA_POSITIONS[offset]
                              for offset in offsets]
        assessment.secded[classify_flips(codeword_positions)] += 1
        assessment.chipkill[layout.classify(offsets)] += 1
    return assessment


def verify_chipkill_with_rs(flips_by_row: dict[int, list[int]],
                            word_bits: int = WORD_BITS) -> dict:
    """Cross-check the symbol-count Chipkill model against a real code.

    For every flipped dataword, inject the flips into an actual SSC-DSD
    Reed-Solomon codeword (x8 symbols) and decode.  Returns counts of
    words the real decoder corrected, rejected (detected), or silently
    mis-decoded — with the invariant (asserted by tests) that every
    single-symbol word decodes cleanly and no multi-symbol word is
    silently accepted as corrected-back-to-original.
    """
    import numpy as np

    from .chipkill import chipkill_rs
    from ..errors import DecodingError

    layout = ChipkillLayout(symbol_bits=8, data_bits=word_bits)
    rs = chipkill_rs(layout)
    rng = np.random.default_rng(12345)
    outcome = {"corrected": 0, "rejected": 0, "silent": 0}
    for offsets in _word_flip_offsets(flips_by_row, word_bits):
        data = [int(v) for v in rng.integers(0, 256, size=rs.k)]
        codeword = rs.encode(data)
        corrupted = list(codeword)
        for offset in offsets:
            corrupted[offset // 8] ^= 1 << (offset % 8)
        try:
            decoded = rs.decode(corrupted)
        except DecodingError:
            outcome["rejected"] += 1
            continue
        if decoded.data == data:
            outcome["corrected"] += 1
        else:
            outcome["silent"] += 1
    return outcome


def required_rs_parity_symbols(max_flips: int) -> int:
    """Parity symbols a Reed-Solomon code needs to *detect* (and correct
    half of) the worst-case flip count, one flipped symbol per flip
    (§7.4's closing argument: 7 flips demand >= 7 parity symbols)."""
    if max_flips < 0:
        raise ConfigError("max_flips must be >= 0")
    return max_flips
