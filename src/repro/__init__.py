"""U-TRR: uncovering in-DRAM RowHammer protection mechanisms.

A reproduction of Hassan et al., MICRO 2021.  See README.md for the
architecture overview and DESIGN.md for the system inventory.

Public surface
--------------
* :mod:`repro.dram` — the simulated DDR4 device (retention, RowHammer,
  refresh physics).
* :mod:`repro.trr` — the in-DRAM TRR mechanisms under study.
* :mod:`repro.vendors` — the 45 Table 1 modules as buildable specs.
* :mod:`repro.softmc` — the SoftMC-style command-level host interface.
* :mod:`repro.core` — **the paper's contribution**: Row Scout, TRR
  Analyzer, and the automated reverse-engineering pipeline.
* :mod:`repro.attacks` — classic baselines and the §7.1 custom patterns.
* :mod:`repro.ecc` — SECDED / Reed-Solomon / Chipkill (§7.4).
* :mod:`repro.eval` — regenerates Table 1 and Figures 8/9/10
  (``python -m repro.eval <artifact>``).
"""

__version__ = "1.0.0"

from . import attacks, core, dram, ecc, eval, softmc, trr, vendors
from .errors import (AttackConfigError, ConfigError, DecodingError,
                     ExperimentError, MappingError, ProfilingError,
                     ProtocolError, ReproError, TimingViolationError)

__all__ = [
    "AttackConfigError",
    "ConfigError",
    "DecodingError",
    "ExperimentError",
    "MappingError",
    "ProfilingError",
    "ProtocolError",
    "ReproError",
    "TimingViolationError",
    "attacks",
    "core",
    "dram",
    "ecc",
    "eval",
    "softmc",
    "trr",
    "vendors",
]
