"""Logical-to-physical DRAM row address mapping schemes.

§5.3 of the paper: consecutive *logical* row addresses (as seen by the
memory controller) are not necessarily physically adjacent in silicon —
the row decoder may scramble addresses, and post-manufacturing repair may
remap rows.  A TRR mechanism refreshes rows that are *physically*
adjacent to an aggressor, so U-TRR must first reverse-engineer the
mapping.  This module provides the mapping schemes the simulator implants
and that :mod:`repro.core.mapping_re` recovers through the RowHammer side
channel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from ..errors import ConfigError, MappingError


class RowMapping(ABC):
    """Bijection between logical and physical row addresses of one bank."""

    def __init__(self, num_rows: int) -> None:
        if num_rows <= 0:
            raise ConfigError("num_rows must be positive")
        self.num_rows = num_rows

    @abstractmethod
    def to_physical(self, logical: int) -> int:
        """Translate a logical row address to its physical location."""

    @abstractmethod
    def to_logical(self, physical: int) -> int:
        """Translate a physical row location back to its logical address."""

    def _check(self, address: int) -> None:
        if not 0 <= address < self.num_rows:
            raise MappingError(
                f"row address {address} out of range [0, {self.num_rows})")

    def physical_neighbors(self, physical: int, distance: int) -> list[int]:
        """In-bounds physical rows at exactly *distance* from *physical*."""
        self._check(physical)
        if distance <= 0:
            raise ConfigError("distance must be positive")
        neighbors = []
        for candidate in (physical - distance, physical + distance):
            if 0 <= candidate < self.num_rows:
                neighbors.append(candidate)
        return neighbors

    def logical_neighbors(self, logical: int, distance: int) -> list[int]:
        """Logical addresses of rows physically adjacent to *logical*."""
        physical = self.to_physical(logical)
        return [self.to_logical(p)
                for p in self.physical_neighbors(physical, distance)]


class DirectMapping(RowMapping):
    """Identity mapping: logical order is preserved in silicon."""

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        return logical

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        return physical


class BitSwapMapping(RowMapping):
    """Row decoder that swaps two address bits (a common scramble).

    Self-inverse, which matches real decoders: the same circuit translates
    in both directions.  ``num_rows`` must be a power of two covering both
    swapped bits.
    """

    def __init__(self, num_rows: int, bit_a: int, bit_b: int) -> None:
        super().__init__(num_rows)
        if num_rows & (num_rows - 1):
            raise ConfigError("BitSwapMapping requires power-of-two num_rows")
        top = num_rows.bit_length() - 1
        if not (0 <= bit_a < top and 0 <= bit_b < top):
            raise ConfigError(f"swapped bits must be below bit {top}")
        self.bit_a = bit_a
        self.bit_b = bit_b

    def _swap(self, address: int) -> int:
        a = (address >> self.bit_a) & 1
        b = (address >> self.bit_b) & 1
        if a == b:
            return address
        return address ^ ((1 << self.bit_a) | (1 << self.bit_b))

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        return self._swap(logical)

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        return self._swap(physical)


class XorScrambleMapping(RowMapping):
    """Decoder that XORs a low address bit into its neighbor.

    Models the "logical order mostly preserved but locally scrambled"
    layout reported for some vendors: ``physical = logical ^ ((logical >>
    source_bit & 1) << target_bit)``.  Self-inverse when ``source_bit !=
    target_bit``.
    """

    def __init__(self, num_rows: int, source_bit: int = 1,
                 target_bit: int = 0) -> None:
        super().__init__(num_rows)
        if num_rows & (num_rows - 1):
            raise ConfigError(
                "XorScrambleMapping requires power-of-two num_rows")
        if source_bit == target_bit:
            raise ConfigError("source and target bits must differ")
        top = num_rows.bit_length() - 1
        if not (0 <= source_bit < top and 0 <= target_bit < top):
            raise ConfigError(f"bits must be below bit {top}")
        self.source_bit = source_bit
        self.target_bit = target_bit

    def _translate(self, address: int) -> int:
        bit = (address >> self.source_bit) & 1
        return address ^ (bit << self.target_bit)

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        return self._translate(logical)

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        return self._translate(physical)


_SCHEMES = {
    "direct": lambda rows: DirectMapping(rows),
    "bit_swap_0_1": lambda rows: BitSwapMapping(rows, 0, 1),
    "bit_swap_1_2": lambda rows: BitSwapMapping(rows, 1, 2),
    "xor_1_0": lambda rows: XorScrambleMapping(rows, 1, 0),
    "xor_2_0": lambda rows: XorScrambleMapping(rows, 2, 0),
}


def make_mapping(scheme: str, num_rows: int) -> RowMapping:
    """Construct a named mapping scheme (see module registry specs)."""
    try:
        factory = _SCHEMES[scheme]
    except KeyError:
        raise ConfigError(
            f"unknown mapping scheme {scheme!r}; "
            f"known: {sorted(_SCHEMES)}") from None
    return factory(num_rows)


def available_schemes() -> list[str]:
    """Names accepted by :func:`make_mapping`."""
    return sorted(_SCHEMES)
