"""Row data patterns.

Retention and RowHammer failures are data-dependent (§3.2): a weak cell
only decays, and a victim cell only flips, when the stored bit holds the
cell's charged polarity.  Row Scout and TRR Analyzer must therefore write
the *same* pattern when profiling and when running experiments.

Patterns are represented symbolically (not as materialized arrays) so a
full-bank scan does not allocate row-sized buffers per row: a row's
stored state is ``pattern + sparse fault overrides``.
"""

from __future__ import annotations

import base64
import zlib
from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigError

#: Bit order convention: bit index b lives in byte b // 8, bit b % 8
#: (LSB-first within the byte).


class DataPattern(ABC):
    """A deterministic bit pattern over a row."""

    name: str = "pattern"

    @abstractmethod
    def bits_at(self, positions: np.ndarray) -> np.ndarray:
        """Pattern bits (0/1, uint8) at the given bit positions."""

    def full(self, row_bits: int) -> np.ndarray:
        """Materialize the whole pattern as a uint8 0/1 array."""
        return self.bits_at(np.arange(row_bits, dtype=np.int64))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()


class AllOnes(DataPattern):
    """Every bit set — the paper's canonical profiling pattern."""

    name = "all-ones"

    def bits_at(self, positions: np.ndarray) -> np.ndarray:
        return np.ones(len(positions), dtype=np.uint8)


class AllZeros(DataPattern):
    """Every bit clear."""

    name = "all-zeros"

    def bits_at(self, positions: np.ndarray) -> np.ndarray:
        return np.zeros(len(positions), dtype=np.uint8)


class Checkerboard(DataPattern):
    """Alternating bits; *phase* selects 0101... (0) or 1010... (1)."""

    name = "checkerboard"

    def __init__(self, phase: int = 0) -> None:
        if phase not in (0, 1):
            raise ConfigError("checkerboard phase must be 0 or 1")
        self.phase = phase

    def bits_at(self, positions: np.ndarray) -> np.ndarray:
        return ((positions + self.phase) % 2).astype(np.uint8)

    def _key(self) -> tuple:
        return (self.phase,)


class ByteFill(DataPattern):
    """Every byte holds the same 8-bit value (e.g. 0x55 row stripes)."""

    name = "byte-fill"

    def __init__(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise ConfigError("byte value must be in [0, 255]")
        self.value = value

    def bits_at(self, positions: np.ndarray) -> np.ndarray:
        return ((self.value >> (positions % 8)) & 1).astype(np.uint8)

    def _key(self) -> tuple:
        return (self.value,)


class CustomPattern(DataPattern):
    """Arbitrary bit content; materialized (use for small/targeted rows)."""

    name = "custom"

    def __init__(self, bits: np.ndarray) -> None:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ConfigError("custom pattern must be a 1-D bit array")
        if bits.size and int(bits.max(initial=0)) > 1:
            raise ConfigError("custom pattern bits must be 0/1")
        self.bits = bits

    def bits_at(self, positions: np.ndarray) -> np.ndarray:
        return self.bits[positions]

    def full(self, row_bits: int) -> np.ndarray:
        if row_bits != self.bits.size:
            raise ConfigError(
                f"pattern holds {self.bits.size} bits, row has {row_bits}")
        return self.bits.copy()

    def _key(self) -> tuple:
        return (self.bits.tobytes(),)


def inverted(pattern: DataPattern, row_bits: int) -> CustomPattern:
    """Bitwise complement of *pattern* (used for aggressor-row data)."""
    return CustomPattern(1 - pattern.full(row_bits))


def pattern_spec(pattern: DataPattern) -> str | dict:
    """Compact, JSON-compatible spec for *pattern* (trace WR records).

    The symbolic patterns encode as short strings (``"1"``, ``"0"``,
    ``"cb0"``/``"cb1"``, ``"b<value>"``); a :class:`CustomPattern`
    carries its raw bits, packed, deflated and base64-encoded, so even
    arbitrary aggressor data stays replayable at a few dozen bytes per
    kilobit.  :func:`pattern_from_spec` is the exact inverse.
    """
    if isinstance(pattern, AllOnes):
        return "1"
    if isinstance(pattern, AllZeros):
        return "0"
    if isinstance(pattern, Checkerboard):
        return f"cb{pattern.phase}"
    if isinstance(pattern, ByteFill):
        return f"b{pattern.value}"
    if isinstance(pattern, CustomPattern):
        packed = np.packbits(pattern.bits, bitorder="little").tobytes()
        return {"raw": base64.b64encode(zlib.compress(packed)).decode(),
                "n": int(pattern.bits.size)}
    raise ConfigError(f"pattern {pattern!r} has no trace spec")


def pattern_from_spec(spec: str | dict) -> DataPattern:
    """Rebuild the :class:`DataPattern` a :func:`pattern_spec` encoded."""
    if isinstance(spec, dict):
        packed = np.frombuffer(
            zlib.decompress(base64.b64decode(spec["raw"])), dtype=np.uint8)
        return CustomPattern(
            np.unpackbits(packed, bitorder="little")[:spec["n"]])
    if spec == "1":
        return AllOnes()
    if spec == "0":
        return AllZeros()
    if spec.startswith("cb"):
        return Checkerboard(int(spec[2:]))
    if spec.startswith("b"):
        return ByteFill(int(spec[1:]))
    raise ConfigError(f"unknown pattern spec {spec!r}")
