"""RowHammer disturbance physics.

Hammering (repeatedly activating) an aggressor row electromagnetically
disturbs physically nearby rows; once a victim cell absorbs more
*effective hammers* than its threshold, its stored bit flips (§2.3).

Model summary
-------------
* Coupling strength decays with physical distance: distance-1 victims
  receive weight 1.0 per effective activation, distance-2 victims a small
  configurable weight — which is why vendor A's TRR refreshes +-2 rows
  around a detected aggressor (Vendor A Observation 2).
* Hammer-order matters (§5.2): the first activation after a row switch
  disturbs at full strength, while consecutive same-row activations
  disturb at a reduced ``cascade_weight``.  Interleaved hammering is thus
  strictly more disturbing per activation than cascaded hammering.
* Per-row thresholds are calibrated against the module's ``hc_first``
  (Table 1): the minimum double-sided hammer count that flips the first
  bit anywhere in the bank.  Each vulnerable row hosts a population of
  victim cells with spread thresholds, so flips-per-row grows as hammer
  counts rise past the threshold (Figure 8).
* Victim-cell bit positions are spatially clustered, reproducing the
  multi-flip 8-byte datawords that break SECDED/Chipkill (Figure 10).
* Modules C0-8 use *pair isolation* (Vendor C Observation 3): hammering
  an odd-addressed row disturbs only its even pair row, and hammering an
  even-addressed row disturbs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..rng import SeedSequenceFactory
from .commands import ActBatch


@dataclass(frozen=True)
class DisturbanceConfig:
    """Parameters of the RowHammer coupling and threshold population."""

    #: Minimum double-sided hammers (per aggressor) for the first bit flip
    #: anywhere in a bank; per-module value from Table 1.
    hc_first: int = 25_000
    #: Coupling weight by physical distance from the aggressor.
    neighbor_weights: dict[int, float] = field(
        default_factory=lambda: {1: 1.0, 2: 0.025})
    #: Relative disturbance of consecutive same-row activations.
    cascade_weight: float = 0.35
    #: Pair-isolated row organization (vendor C modules C0-8).
    paired_coupling: bool = False
    #: Lognormal spread of per-row base thresholds around hc_first.
    row_threshold_mu: float = 0.40
    row_threshold_sigma: float = 0.10
    #: Mean number of potential victim cells per vulnerable row.
    victim_cells_mean: float = 60.0
    #: Exponential scale of per-cell threshold spread above the row base.
    threshold_spread_scale: float = 0.5
    #: Fraction of victim cells clustered around shared bit positions.
    cluster_fraction: float = 0.5
    #: Std-dev (in bits) of clustered cell positions around their center.
    cluster_sigma_bits: float = 26.0

    def __post_init__(self) -> None:
        if self.hc_first <= 0:
            raise ConfigError("hc_first must be positive")
        if not 0 < self.cascade_weight <= 1:
            raise ConfigError("cascade_weight must be in (0, 1]")
        if not self.neighbor_weights:
            raise ConfigError("neighbor_weights must not be empty")
        for distance, weight in self.neighbor_weights.items():
            if distance <= 0 or weight < 0:
                raise ConfigError("invalid neighbor weight entry")
        if self.victim_cells_mean < 0:
            raise ConfigError("victim_cells_mean must be >= 0")
        if not 0 <= self.cluster_fraction <= 1:
            raise ConfigError("cluster_fraction must be in [0, 1]")

    @property
    def blast_radius(self) -> int:
        """Largest victim distance with non-zero coupling."""
        return max(d for d, w in self.neighbor_weights.items() if w > 0)

    def victims_of(self, aggressor: int, num_rows: int
                   ) -> list[tuple[int, float]]:
        """Return ``(victim_physical_row, coupling_weight)`` pairs.

        Under pair isolation, only an odd aggressor disturbs anything,
        and only its even pair row (Vendor C Observation 3).
        """
        if self.paired_coupling:
            if aggressor % 2 == 1:
                return [(aggressor - 1, 1.0)]
            return []
        victims = []
        for distance, weight in sorted(self.neighbor_weights.items()):
            if weight <= 0:
                continue
            for victim in (aggressor - distance, aggressor + distance):
                if 0 <= victim < num_rows:
                    victims.append((victim, weight))
        return victims

    def effective_acts(self, batch: ActBatch) -> dict[int, float]:
        """Per-aggressor effective activation counts for an ACT batch.

        The first activation of each same-row run counts fully; the rest
        count at ``cascade_weight``.
        """
        pattern = batch.pattern
        if len(pattern) == 1:
            # Fast path for the dominant case — a single-aggressor
            # cascade (every row read/write, hammer_single, and most TRR
            # probe traffic) — skipping the run-stats machinery.
            row, count = pattern[0]
            if count == 0:
                return {}
            return {row: 1 + (count - 1) * self.cascade_weight}
        effective: dict[int, float] = {}
        for row, (runs, acts) in batch.run_stats().items():
            effective[row] = runs + (acts - runs) * self.cascade_weight
        return effective


class RowHammerProfile:
    """Victim-cell population of one row (lazy, seeded, immutable)."""

    __slots__ = ("positions", "thresholds", "polarity")

    def __init__(self, positions: np.ndarray, thresholds: np.ndarray,
                 polarity: np.ndarray) -> None:
        self.positions = positions
        self.thresholds = thresholds
        self.polarity = polarity

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def base_threshold(self) -> float:
        """Effective hammers needed to flip the row's weakest cell."""
        if len(self.thresholds) == 0:
            return float("inf")
        return float(self.thresholds.min())

    def min_threshold_for(self, cell_bits: np.ndarray) -> float:
        """Weakest threshold among cells exposed by per-cell stored bits."""
        if len(self.thresholds) == 0:
            return float("inf")
        exposed = cell_bits == self.polarity
        if not exposed.any():
            return float("inf")
        return float(self.thresholds[exposed].min())

    def flipped_cells(self, effective_hammers: float,
                      cell_bits: np.ndarray | None = None) -> np.ndarray:
        """Indices of cells flipped by *effective_hammers* of disturbance.

        *cell_bits*, when given, holds the stored bit of each profile cell
        (aligned with ``positions``); a cell only flips if its stored bit
        equals the cell's charged polarity.
        """
        if len(self.positions) == 0:
            return np.empty(0, dtype=np.int64)
        flipped = self.thresholds <= effective_hammers
        if cell_bits is not None:
            flipped &= cell_bits == self.polarity
        return np.flatnonzero(flipped)

    def flip_count_at(self, effective_hammers: float) -> int:
        """Number of flippable cells at a disturbance level (any data)."""
        if len(self.thresholds) == 0:
            return 0
        return int((self.thresholds <= effective_hammers).sum())


def generate_hammer_profile(seeds: SeedSequenceFactory, bank: int, row: int,
                            config: DisturbanceConfig,
                            row_bits: int) -> RowHammerProfile:
    """Deterministically generate the victim-cell profile of one row."""
    rng = seeds.stream("hammer", bank, row)
    # Table 1's HC_first counts activations *per aggressor* in double-sided
    # hammering; the victim absorbs disturbance from both neighbors, so the
    # weakest cell threshold is ~2x HC_first effective hammers.
    base = 2.0 * config.hc_first * float(np.exp(rng.normal(
        config.row_threshold_mu, config.row_threshold_sigma)))
    count = 1 + int(rng.poisson(config.victim_cells_mean))
    spread = rng.exponential(config.threshold_spread_scale, size=count)
    spread[0] = 0.0  # the weakest cell sits exactly at the row base
    thresholds = base * (1.0 + spread)

    positions = np.empty(count, dtype=np.int64)
    clustered = rng.random(count) < config.cluster_fraction
    num_clustered = int(clustered.sum())
    if num_clustered:
        num_centers = max(2, 2 + int(rng.poisson(3.0)))
        centers = rng.integers(0, row_bits, size=num_centers)
        chosen = centers[rng.integers(0, num_centers, size=num_clustered)]
        offsets = rng.normal(0.0, config.cluster_sigma_bits,
                             size=num_clustered)
        positions[clustered] = np.clip(
            (chosen + offsets).astype(np.int64), 0, row_bits - 1)
    num_uniform = count - num_clustered
    if num_uniform:
        positions[~clustered] = rng.integers(0, row_bits, size=num_uniform)
    polarity = rng.integers(0, 2, size=count, dtype=np.uint8)
    return RowHammerProfile(positions, thresholds, polarity)
