"""Data-retention physics: weak cells and Variable Retention Time (VRT).

U-TRR's side channel is the data-retention failure: a DRAM cell left
unrefreshed longer than its retention time loses its charge and its
stored bit decays to the cell's discharged value.  This module generates
per-row weak-cell populations deterministically (from the module's seed
factory) and evaluates which cells have failed after a given unrefreshed
interval.

Model summary
-------------
* Each row hosts ``Poisson(weak_cells_per_row_mean)`` weak cells; all
  other cells are "strong" and never fail within experiment time scales
  (real strong cells retain for many seconds at 85 C).
* Weak-cell retention times are log-uniform between ``min_retention_ms``
  and ``max_retention_ms`` — matching the empirical spread that lets Row
  Scout find rows failing anywhere from ~100 ms upward (§4.2).
* Each weak cell has a *polarity*: the stored value that corresponds to
  the charged (decay-prone) state.  A cell only decays if the row's data
  holds that value at the cell position, reproducing the data-pattern
  dependence of retention profiling (§3.1).
* A configurable fraction of weak cells exhibit VRT (§4.1): their
  retention toggles between the base value and an alternate value at
  random observation points.  Row Scout's repeated consistency validation
  exists precisely to reject rows containing such cells.
* Retention scales with temperature: halving per +10 C around the 85 C
  reference, the fixed test temperature used in the paper (§6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..rng import SeedSequenceFactory
from ..units import ms


@dataclass(frozen=True)
class RetentionConfig:
    """Parameters of the retention-failure population."""

    weak_cells_per_row_mean: float = 0.12
    min_retention_ms: float = 80.0
    max_retention_ms: float = 8000.0
    vrt_fraction: float = 0.12
    #: Alternate VRT retention as a multiple of the base (low, high).
    vrt_ratio_range: tuple[float, float] = (0.25, 0.6)
    #: Probability that a VRT cell toggles state at each observation.
    vrt_toggle_probability: float = 0.04
    temperature_c: float = 85.0
    reference_temperature_c: float = 85.0

    def __post_init__(self) -> None:
        if self.weak_cells_per_row_mean < 0:
            raise ConfigError("weak_cells_per_row_mean must be >= 0")
        if not 0 < self.min_retention_ms < self.max_retention_ms:
            raise ConfigError("retention range must satisfy 0 < min < max")
        if not 0 <= self.vrt_fraction <= 1:
            raise ConfigError("vrt_fraction must be in [0, 1]")
        low, high = self.vrt_ratio_range
        if not 0 < low <= high:
            raise ConfigError("vrt_ratio_range must satisfy 0 < low <= high")
        if not 0 <= self.vrt_toggle_probability <= 1:
            raise ConfigError("vrt_toggle_probability must be in [0, 1]")

    def temperature_factor(self) -> float:
        """Retention multiplier for the configured temperature.

        Retention roughly halves for every +10 C; the factor is 1.0 at the
        85 C reference so paper-calibrated values apply unchanged.
        """
        delta = self.reference_temperature_c - self.temperature_c
        return float(2.0 ** (delta / 10.0))


class RowRetentionProfile:
    """Weak-cell population of a single row (lazy, seeded, mutable VRT state).

    Attributes are parallel numpy arrays over the row's weak cells.
    """

    __slots__ = ("positions", "base_retention_ps", "alt_retention_ps",
                 "polarity", "is_vrt", "vrt_state", "has_vrt")

    def __init__(self, positions: np.ndarray, base_retention_ps: np.ndarray,
                 alt_retention_ps: np.ndarray, polarity: np.ndarray,
                 is_vrt: np.ndarray) -> None:
        self.positions = positions
        self.base_retention_ps = base_retention_ps
        self.alt_retention_ps = alt_retention_ps
        self.polarity = polarity
        self.is_vrt = is_vrt
        #: True = cell currently in its alternate retention state.
        self.vrt_state = np.zeros(len(positions), dtype=bool)
        #: The VRT membership is fixed at generation; settle consults it
        #: on every observation, so the any() scan is done once here.
        self.has_vrt = bool(is_vrt.any())

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def current_retention_ps(self) -> np.ndarray:
        """Per-cell retention times given current VRT state."""
        if not self.has_vrt:
            # vrt_state can never leave all-False; the base array is the
            # answer (returned by reference — callers do not mutate it).
            return self.base_retention_ps
        return np.where(self.vrt_state, self.alt_retention_ps,
                        self.base_retention_ps)

    def failed_cells(self, elapsed_ps: int,
                     cell_bits: np.ndarray | None = None) -> np.ndarray:
        """Indices (into the profile) of cells that decay after *elapsed_ps*.

        *cell_bits*, when given, holds the stored bit of each profile cell
        (aligned with ``positions``); a cell only decays if its stored bit
        equals the cell's charged polarity.
        """
        if len(self.positions) == 0:
            return np.empty(0, dtype=np.int64)
        failing = self.current_retention_ps <= elapsed_ps
        if cell_bits is not None:
            failing &= cell_bits == self.polarity
        return np.flatnonzero(failing)

    def toggle_vrt(self, rng: np.random.Generator,
                   toggle_probability: float) -> None:
        """Randomly toggle VRT cells (called at each row observation)."""
        if not self.has_vrt or toggle_probability <= 0:
            return
        flips = self.is_vrt & (rng.random(len(self.positions))
                               < toggle_probability)
        self.vrt_state ^= flips

    def min_retention_ps(self, cell_bits: np.ndarray | None = None) -> int:
        """Ground-truth retention time of the row given per-cell stored bits.

        Returns a very large sentinel when no weak cell is exposed by the
        stored pattern.  Test/analysis helper — the U-TRR tools never call
        this; they measure it through the side channel.
        """
        if len(self.positions) == 0:
            return np.iinfo(np.int64).max
        retention = self.current_retention_ps
        if cell_bits is not None:
            exposed = cell_bits == self.polarity
            if not exposed.any():
                return np.iinfo(np.int64).max
            retention = retention[exposed]
        return int(retention.min())


def generate_profile(seeds: SeedSequenceFactory, bank: int, row: int,
                     config: RetentionConfig,
                     row_bits: int) -> RowRetentionProfile:
    """Deterministically generate the weak-cell profile of one row."""
    rng = seeds.stream("retention", bank, row)
    count = int(rng.poisson(config.weak_cells_per_row_mean))
    if count == 0:
        empty = np.empty(0, dtype=np.int64)
        return RowRetentionProfile(empty, empty.copy(), empty.copy(),
                                   np.empty(0, dtype=np.uint8),
                                   np.empty(0, dtype=bool))
    positions = rng.choice(row_bits, size=min(count, row_bits), replace=False)
    positions = positions.astype(np.int64)
    count = len(positions)
    log_min = np.log(config.min_retention_ms)
    log_max = np.log(config.max_retention_ms)
    retention_ms = np.exp(rng.uniform(log_min, log_max, size=count))
    retention_ms *= config.temperature_factor()
    base = np.array([ms(v) for v in retention_ms], dtype=np.int64)
    ratio_low, ratio_high = config.vrt_ratio_range
    ratios = rng.uniform(ratio_low, ratio_high, size=count)
    alt = (base * ratios).astype(np.int64)
    polarity = rng.integers(0, 2, size=count, dtype=np.uint8)
    is_vrt = rng.random(count) < config.vrt_fraction
    return RowRetentionProfile(positions, base, alt, polarity, is_vrt)
