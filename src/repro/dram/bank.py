"""Bank state: lazily materialized rows with settle-on-observe faults.

A bank tracks only the rows an experiment has touched.  Each tracked row
stores its data as ``pattern + sparse fault overrides`` plus two fault
clocks: the wall time of its last charge restoration (any activation or
refresh restores charge) and its accumulated RowHammer disturbance.

Faults are *settled* lazily, at observation points (reads and refreshes):
pending retention decay and hammer flips are committed into the fault
overlay, and only then is the charge clock reset.  A refresh that arrives
after a cell has already decayed therefore restores the **decayed** value
— exactly the physical behaviour U-TRR's side channel relies on (§3.2,
footnote 4).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..rng import SeedSequenceFactory
from .commands import ActBatch
from .disturbance import (DisturbanceConfig, RowHammerProfile,
                          generate_hammer_profile)
from .environment import ChipEnvironment
from .patterns import AllZeros, DataPattern
from .refresh import RefreshEngine
from .retention import (RetentionConfig, RowRetentionProfile,
                        generate_profile)

_EPOCH_PATTERN = AllZeros()

_EMPTY_POSITIONS = np.empty(0, dtype=np.int64)
_EMPTY_VALUES = np.empty(0, dtype=np.uint8)
_EMPTY_POSITIONS.setflags(write=False)
_EMPTY_VALUES.setflags(write=False)


class RowState:
    """Mutable state of one tracked (materialized) row.

    The fault overlay is a pair of parallel vectors — sorted unique bit
    positions plus their stored values — instead of a ``dict``: every
    consumer (settle, read, mismatch scan) touches the whole overlay at
    once, so array operations replace per-cell Python loops.
    """

    __slots__ = ("pattern", "fault_positions", "fault_values",
                 "last_recharge_ps", "disturbance",
                 "retention_profile", "hammer_profile", "_overlay_cache")

    def __init__(self, pattern: DataPattern, last_recharge_ps: int) -> None:
        self.pattern = pattern
        #: Sparse overlay, parallel vectors: sorted unique bit positions
        #: (int64) and the stored bit at each (uint8).
        self.fault_positions: np.ndarray = _EMPTY_POSITIONS
        self.fault_values: np.ndarray = _EMPTY_VALUES
        self.last_recharge_ps = last_recharge_ps
        #: Accumulated effective hammers since the last charge restoration.
        self.disturbance = 0.0
        self.retention_profile: RowRetentionProfile | None = None
        self.hammer_profile: RowHammerProfile | None = None
        #: Overlay-lookup memo for ``stored_bits_at``: needle-array id ->
        #: (overlay ref, needles ref, hit mask, overlay indices).  Most
        #: settles commit nothing, so the overlay and both profile
        #: position arrays are unchanged between observations; holding
        #: references keeps the ids valid while entries live.
        self._overlay_cache: dict[int, tuple] = {}

    def clear_faults(self) -> None:
        self.fault_positions = _EMPTY_POSITIONS
        self.fault_values = _EMPTY_VALUES

    def overlay_faults(self, positions: np.ndarray,
                       values: np.ndarray) -> None:
        """Merge new faults into the overlay (later entries win).

        Within *positions* a repeated bit position keeps its **last**
        value, matching the insertion order of the per-cell loop this
        replaces; against the existing overlay, new entries override.
        """
        if positions.size == 0:
            return
        if positions.size == 1 or bool((positions[1:] > positions[:-1])
                                       .all()):
            # Already sorted unique (settle's commits always are — they
            # index into sorted profile positions): skip the dedup sort.
            uniq = positions
            new_values = values.astype(np.uint8, copy=False)
        else:
            # Dedup keeping the last occurrence: the first occurrence in
            # the reversed array is the last in the original.
            uniq, first_in_reversed = np.unique(positions[::-1],
                                                return_index=True)
            new_values = np.ascontiguousarray(
                values[::-1][first_in_reversed]).astype(np.uint8,
                                                        copy=False)
        old_positions = self.fault_positions
        if old_positions.size:
            kept = ~_membership_mask(uniq, old_positions)
            merged_positions = np.concatenate(
                [old_positions[kept], uniq])
            merged_values = np.concatenate(
                [self.fault_values[kept], new_values])
            order = np.argsort(merged_positions, kind="stable")
            self.fault_positions = merged_positions[order]
            self.fault_values = merged_values[order]
        else:
            self.fault_positions = uniq
            self.fault_values = new_values

    def stored_bits_at(self, positions: np.ndarray) -> np.ndarray:
        """Current stored bits at *positions* (pattern + fault overlay)."""
        # bits_at materializes a fresh array, safe to overlay in place.
        bits = self.pattern.bits_at(positions)
        overlay = self.fault_positions
        if overlay.size:
            cached = self._overlay_cache.get(id(positions))
            if (cached is not None and cached[0] is overlay
                    and cached[1] is positions):
                hit, overlay_indices = cached[2], cached[3]
            else:
                indices = np.searchsorted(overlay, positions)
                hit = np.zeros(len(positions), dtype=bool)
                in_bounds = indices < overlay.size
                hit[in_bounds] = (overlay[indices[in_bounds]]
                                  == positions[in_bounds])
                overlay_indices = indices[hit]
                if len(self._overlay_cache) >= 8:
                    self._overlay_cache.clear()
                self._overlay_cache[id(positions)] = (
                    overlay, positions, hit, overlay_indices)
            bits[hit] = self.fault_values[overlay_indices]
        return bits


def _membership_mask(sorted_haystack: np.ndarray,
                     needles: np.ndarray) -> np.ndarray:
    """Boolean mask over *needles* marking members of *sorted_haystack*."""
    indices = np.searchsorted(sorted_haystack, needles)
    mask = np.zeros(len(needles), dtype=bool)
    in_bounds = indices < sorted_haystack.size
    mask[in_bounds] = sorted_haystack[indices[in_bounds]] == needles[in_bounds]
    return mask


class Bank:
    """One DRAM bank: physical rows, fault physics, refresh bookkeeping."""

    def __init__(self, index: int, num_rows: int, row_bits: int,
                 retention_config: RetentionConfig,
                 disturbance_config: DisturbanceConfig,
                 seeds: SeedSequenceFactory,
                 refresh_engine: RefreshEngine,
                 environment: ChipEnvironment | None = None) -> None:
        if num_rows <= 0 or row_bits <= 0:
            raise ConfigError("num_rows and row_bits must be positive")
        self.index = index
        #: Shared physical environment (fault injection's physics seam);
        #: ``None`` behaves exactly like a neutral environment.
        self.environment = environment
        self.num_rows = num_rows
        self.row_bits = row_bits
        self.retention_config = retention_config
        self.disturbance_config = disturbance_config
        self._seeds = seeds
        self._refresh_engine = refresh_engine
        self._vrt_rng = seeds.stream("vrt-dynamics", index)
        self.rows: dict[int, RowState] = {}
        #: Tracked rows grouped by regular-refresh slot.
        self._slot_rows: dict[int, set[int]] = {}
        #: Most recently activated row: consecutive activations of one
        #: row cascade across batch boundaries exactly as within one.
        self._last_activated: int | None = None
        #: Materialized full-row pattern buffers (read-only masters) —
        #: reads copy these instead of rebuilding ``pattern.full``.
        self._pattern_buffers: dict[DataPattern, np.ndarray] = {}
        #: Victim/coupling lists per aggressor (pure function of the
        #: disturbance config and bank geometry).
        self._victims: dict[int, tuple[tuple[int, float], ...]] = {}

    # -- materialization ---------------------------------------------------

    def state(self, row: int) -> RowState:
        """Return (materializing if needed) the state of physical *row*."""
        existing = self.rows.get(row)
        if existing is not None:
            return existing
        if not 0 <= row < self.num_rows:
            raise ConfigError(
                f"row {row} out of range [0, {self.num_rows})")
        # A row untouched so far held the epoch pattern and was last
        # recharged by whichever regular refresh most recently covered it.
        last = self._refresh_engine.last_regular_refresh_ps(row)
        state = RowState(_EPOCH_PATTERN, last)
        self.rows[row] = state
        slot = self._refresh_engine.slot_of(row)
        self._slot_rows.setdefault(slot, set()).add(row)
        return state

    def _retention(self, row: int, state: RowState) -> RowRetentionProfile:
        if state.retention_profile is None:
            state.retention_profile = generate_profile(
                self._seeds, self.index, row, self.retention_config,
                self.row_bits)
        return state.retention_profile

    def _hammer(self, row: int, state: RowState) -> RowHammerProfile:
        if state.hammer_profile is None:
            state.hammer_profile = generate_hammer_profile(
                self._seeds, self.index, row, self.disturbance_config,
                self.row_bits)
        return state.hammer_profile

    # -- fault settlement --------------------------------------------------

    def settle(self, row: int, now_ps: int) -> None:
        """Commit pending retention decay and hammer flips into the row."""
        state = self.state(row)
        profile = self._retention(row, state)
        environment = self.environment
        if len(profile):
            toggle_probability = self.retention_config.vrt_toggle_probability
            if environment is not None:
                toggle_probability = environment.toggle_probability(
                    toggle_probability)
            profile.toggle_vrt(self._vrt_rng, toggle_probability)
            elapsed = now_ps - state.last_recharge_ps
            if environment is not None and elapsed > 0:
                elapsed = environment.effective_elapsed(self.index, row,
                                                        elapsed)
            if elapsed > 0:
                stored = state.stored_bits_at(profile.positions)
                failed = profile.failed_cells(elapsed, stored)
                if failed.size:
                    state.overlay_faults(profile.positions[failed],
                                         1 - profile.polarity[failed])
        if state.disturbance > 0:
            hammer = self._hammer(row, state)
            if len(hammer):
                stored = state.stored_bits_at(hammer.positions)
                flipped = hammer.flipped_cells(state.disturbance, stored)
                if flipped.size:
                    state.overlay_faults(hammer.positions[flipped],
                                         1 - hammer.polarity[flipped])

    def _recharge(self, state: RowState, now_ps: int) -> None:
        state.last_recharge_ps = now_ps
        state.disturbance = 0.0

    # -- host-visible operations (physical addressing) ----------------------

    def write(self, row: int, pattern: DataPattern, now_ps: int) -> None:
        """Overwrite the whole row; restores charge and clears faults."""
        state = self.state(row)
        state.pattern = pattern
        state.clear_faults()
        self._recharge(state, now_ps)

    def _pattern_full(self, pattern: DataPattern) -> np.ndarray:
        """Read-only materialized buffer for *pattern* (cached).

        Patterns hash by content, so repeated reads of the same data
        reuse one buffer instead of rebuilding ``pattern.full`` per read.
        """
        buffer = self._pattern_buffers.get(pattern)
        if buffer is None:
            if len(self._pattern_buffers) >= 256:
                self._pattern_buffers.clear()
            buffer = pattern.full(self.row_bits)
            buffer.setflags(write=False)
            self._pattern_buffers[pattern] = buffer
        return buffer

    def read(self, row: int, now_ps: int) -> np.ndarray:
        """Settle and return the row's stored bits; the ACT recharges it."""
        self.settle(row, now_ps)
        state = self.rows[row]
        bits = self._pattern_full(state.pattern).copy()
        if state.fault_positions.size:
            bits[state.fault_positions] = state.fault_values
        self._recharge(state, now_ps)
        return bits

    def read_mismatches(self, row: int, now_ps: int) -> list[int]:
        """Settle and return positions whose stored bit differs from the
        row's written pattern (sorted).  The ACT recharges the row."""
        self.settle(row, now_ps)
        state = self.rows[row]
        overlay = state.fault_positions
        if overlay.size:
            written = state.pattern.bits_at(overlay)
            result = overlay[written != state.fault_values].tolist()
        else:
            result = []
        self._recharge(state, now_ps)
        return result

    def _victims_of(self, aggressor: int) -> tuple[tuple[int, float], ...]:
        victims = self._victims.get(aggressor)
        if victims is None:
            victims = tuple(self.disturbance_config.victims_of(
                aggressor, self.num_rows))
            self._victims[aggressor] = victims
        return victims

    def absorb_hammering(self, batch: ActBatch, now_ps: int) -> None:
        """Apply an ACT batch: recharge aggressors, disturb their victims."""
        if batch.total == 0:
            return
        effective = self.disturbance_config.effective_acts(batch)
        # Cross-batch cascade continuity: if this batch starts with the
        # row the previous activation ended on, its first activation is a
        # run continuation, not a fresh full-strength run.
        first_row = batch.row_at(0)
        if first_row == self._last_activated and effective.get(first_row):
            effective[first_row] -= (
                1.0 - self.disturbance_config.cascade_weight)
        self._last_activated = batch.row_at(batch.total - 1)
        rows = self.rows
        for aggressor, eff_acts in effective.items():
            if not 0 <= aggressor < self.num_rows:
                raise ConfigError(f"aggressor row {aggressor} out of range")
            self.settle(aggressor, now_ps)
            self._recharge(rows[aggressor], now_ps)
            for victim, weight in self._victims_of(aggressor):
                victim_state = rows.get(victim)
                if victim_state is None:
                    victim_state = self.state(victim)
                victim_state.disturbance += eff_acts * weight

    def _steady_effective(self, batch: ActBatch) -> dict[int, float]:
        """Per-aggressor effective counts of *batch* when it follows an
        identical copy of itself (the cascade-continuity steady state)."""
        effective = self.disturbance_config.effective_acts(batch)
        first_row = batch.row_at(0)
        if (first_row == batch.row_at(batch.total - 1)
                and effective.get(first_row)):
            effective[first_row] -= (
                1.0 - self.disturbance_config.cascade_weight)
        return effective

    def fusion_safe(self, batch: ActBatch, step_ps: int) -> bool:
        """True when back-to-back repeats of *batch* (one per *step_ps*)
        provably commit nothing at the intermediate aggressor settles.

        :meth:`absorb_repeated` reproduces the per-command execution of
        K identical batches exactly — but only if the settles it skips
        would have been no-ops.  Each skipped settle sees an aggressor
        ``step_ps`` after its last recharge, carrying only the
        cross-coupled disturbance of one command.  The settle is a
        provable no-op when the aggressor's profile has no VRT cells
        (the toggle draw would consume shared RNG), every weak cell
        outlasts ``step_ps``, and the cross-coupled disturbance stays
        strictly below the weakest hammer threshold.  The disturbance
        bound uses the *full* (non-continued) effective counts — an
        upper bound on both the first and the steady command — with a
        1% float-ordering margin.
        """
        if batch.total == 0:
            return False
        environment = self.environment
        if environment is not None and not environment.neutral:
            return False
        effective = self.disturbance_config.effective_acts(batch)
        cross: dict[int, float] = {row: 0.0 for row in effective}
        for aggressor, eff_acts in effective.items():
            if not 0 <= aggressor < self.num_rows:
                raise ConfigError(f"aggressor row {aggressor} out of range")
            for victim, weight in self._victims_of(aggressor):
                if victim in cross:
                    cross[victim] += eff_acts * weight
        for aggressor in effective:
            state = self.state(aggressor)
            profile = self._retention(aggressor, state)
            if profile.has_vrt:
                return False
            if len(profile) and step_ps >= int(
                    profile.base_retention_ps.min()):
                return False
            if cross[aggressor] > 0.0:
                # Materializes the hammer profile iff the per-command
                # path would (an intermediate settle with positive
                # disturbance), keeping lazy-state parity.
                hammer = self._hammer(aggressor, state)
                if cross[aggressor] >= 0.99 * hammer.base_threshold:
                    return False
        return True

    def absorb_repeated(self, batch: ActBatch, now_ps: int, repeats: int,
                        step_ps: int) -> None:
        """Apply *repeats* identical copies of *batch*, the i-th at
        ``now_ps + i * step_ps``, in one pass.

        Bit-exact reconstruction of the sequential loop given the
        :meth:`fusion_safe` guarantee that intermediate aggressor
        settles commit nothing: the first command runs verbatim (it
        carries the cross-batch cascade continuity against whatever ran
        before), then the remaining ``repeats - 1`` steady commands
        collapse into closed forms — victims accumulate their
        per-command disturbance additions in the exact sequential float
        order (``np.add.accumulate`` is strictly left-to-right),
        aggressors end recharged at the final command's timestamp
        holding only the additions later-ordered aggressors made after
        their recharge.
        """
        self.absorb_hammering(batch, now_ps)
        if repeats <= 1:
            return
        effective = self._steady_effective(batch)
        order = {row: index for index, row in enumerate(effective)}
        victim_adds: dict[int, list[float]] = {}
        residual: dict[int, float] = {row: 0.0 for row in effective}
        for aggressor, eff_acts in effective.items():
            position = order[aggressor]
            for victim, weight in self._victims_of(aggressor):
                add = eff_acts * weight
                other = order.get(victim)
                if other is None:
                    victim_adds.setdefault(victim, []).append(add)
                elif other < position:
                    # Lands after the victim-aggressor's own recharge in
                    # the final command, so it survives the run.
                    residual[victim] += add
        rows = self.rows
        tiles = repeats - 1
        for victim, adds in victim_adds.items():
            state = rows.get(victim)
            if state is None:
                state = self.state(victim)
            sequence = np.empty(1 + len(adds) * tiles, dtype=np.float64)
            sequence[0] = state.disturbance
            sequence[1:] = np.tile(np.asarray(adds, dtype=np.float64),
                                   tiles)
            state.disturbance = float(np.add.accumulate(sequence)[-1])
        final_ps = now_ps + tiles * step_ps
        for aggressor in effective:
            state = rows[aggressor]
            state.last_recharge_ps = final_ps
            state.disturbance = residual[aggressor]

    def refresh_rows(self, rows, now_ps: int) -> None:
        """Refresh specific rows (used for TRR-induced refreshes)."""
        for row in rows:
            self.settle(row, now_ps)
            self._recharge(self.rows[row], now_ps)

    def regular_refresh(self, slot: int, now_ps: int) -> None:
        """Apply a regular-refresh slot to the tracked rows it covers."""
        for row in self._slot_rows.get(slot, ()):
            self.settle(row, now_ps)
            self._recharge(self.rows[row], now_ps)

    # -- ground-truth helpers (tests/analysis only; tools never call) -------

    def true_retention_ps(self, row: int, pattern: DataPattern) -> int:
        """Ground-truth retention time of *row* under *pattern*."""
        state = self.state(row)
        profile = self._retention(row, state)
        if not len(profile):
            return np.iinfo(np.int64).max
        return profile.min_retention_ps(pattern.bits_at(profile.positions))

    def true_min_hammer_threshold(self, row: int,
                                  pattern: DataPattern | None = None
                                  ) -> float:
        """Ground-truth weakest victim-cell threshold of *row*.

        With *pattern* given, only cells whose charged polarity is exposed
        by the stored data count (RowHammer is data-dependent).
        """
        state = self.state(row)
        profile = self._hammer(row, state)
        if pattern is None:
            return profile.base_threshold
        return profile.min_threshold_for(pattern.bits_at(profile.positions))
