"""Bank state: lazily materialized rows with settle-on-observe faults.

A bank tracks only the rows an experiment has touched.  Each tracked row
stores its data as ``pattern + sparse fault overrides`` plus two fault
clocks: the wall time of its last charge restoration (any activation or
refresh restores charge) and its accumulated RowHammer disturbance.

Faults are *settled* lazily, at observation points (reads and refreshes):
pending retention decay and hammer flips are committed into the fault
overlay, and only then is the charge clock reset.  A refresh that arrives
after a cell has already decayed therefore restores the **decayed** value
— exactly the physical behaviour U-TRR's side channel relies on (§3.2,
footnote 4).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..rng import SeedSequenceFactory
from .commands import ActBatch
from .disturbance import (DisturbanceConfig, RowHammerProfile,
                          generate_hammer_profile)
from .environment import ChipEnvironment
from .patterns import AllZeros, DataPattern
from .refresh import RefreshEngine
from .retention import (RetentionConfig, RowRetentionProfile,
                        generate_profile)

_EPOCH_PATTERN = AllZeros()


class RowState:
    """Mutable state of one tracked (materialized) row."""

    __slots__ = ("pattern", "faults", "last_recharge_ps", "disturbance",
                 "retention_profile", "hammer_profile")

    def __init__(self, pattern: DataPattern, last_recharge_ps: int) -> None:
        self.pattern = pattern
        #: Sparse overlay: bit position -> stored bit differing from pattern.
        self.faults: dict[int, int] = {}
        self.last_recharge_ps = last_recharge_ps
        #: Accumulated effective hammers since the last charge restoration.
        self.disturbance = 0.0
        self.retention_profile: RowRetentionProfile | None = None
        self.hammer_profile: RowHammerProfile | None = None

    def stored_bits_at(self, positions: np.ndarray) -> np.ndarray:
        """Current stored bits at *positions* (pattern + fault overlay)."""
        bits = self.pattern.bits_at(positions).copy()
        if self.faults:
            for i, pos in enumerate(positions):
                value = self.faults.get(int(pos))
                if value is not None:
                    bits[i] = value
        return bits


class Bank:
    """One DRAM bank: physical rows, fault physics, refresh bookkeeping."""

    def __init__(self, index: int, num_rows: int, row_bits: int,
                 retention_config: RetentionConfig,
                 disturbance_config: DisturbanceConfig,
                 seeds: SeedSequenceFactory,
                 refresh_engine: RefreshEngine,
                 environment: ChipEnvironment | None = None) -> None:
        if num_rows <= 0 or row_bits <= 0:
            raise ConfigError("num_rows and row_bits must be positive")
        self.index = index
        #: Shared physical environment (fault injection's physics seam);
        #: ``None`` behaves exactly like a neutral environment.
        self.environment = environment
        self.num_rows = num_rows
        self.row_bits = row_bits
        self.retention_config = retention_config
        self.disturbance_config = disturbance_config
        self._seeds = seeds
        self._refresh_engine = refresh_engine
        self._vrt_rng = seeds.stream("vrt-dynamics", index)
        self.rows: dict[int, RowState] = {}
        #: Tracked rows grouped by regular-refresh slot.
        self._slot_rows: dict[int, set[int]] = {}
        #: Most recently activated row: consecutive activations of one
        #: row cascade across batch boundaries exactly as within one.
        self._last_activated: int | None = None

    # -- materialization ---------------------------------------------------

    def state(self, row: int) -> RowState:
        """Return (materializing if needed) the state of physical *row*."""
        existing = self.rows.get(row)
        if existing is not None:
            return existing
        if not 0 <= row < self.num_rows:
            raise ConfigError(
                f"row {row} out of range [0, {self.num_rows})")
        # A row untouched so far held the epoch pattern and was last
        # recharged by whichever regular refresh most recently covered it.
        last = self._refresh_engine.last_regular_refresh_ps(row)
        state = RowState(_EPOCH_PATTERN, last)
        self.rows[row] = state
        slot = self._refresh_engine.slot_of(row)
        self._slot_rows.setdefault(slot, set()).add(row)
        return state

    def _retention(self, row: int, state: RowState) -> RowRetentionProfile:
        if state.retention_profile is None:
            state.retention_profile = generate_profile(
                self._seeds, self.index, row, self.retention_config,
                self.row_bits)
        return state.retention_profile

    def _hammer(self, row: int, state: RowState) -> RowHammerProfile:
        if state.hammer_profile is None:
            state.hammer_profile = generate_hammer_profile(
                self._seeds, self.index, row, self.disturbance_config,
                self.row_bits)
        return state.hammer_profile

    # -- fault settlement --------------------------------------------------

    def settle(self, row: int, now_ps: int) -> None:
        """Commit pending retention decay and hammer flips into the row."""
        state = self.state(row)
        profile = self._retention(row, state)
        environment = self.environment
        if len(profile):
            toggle_probability = self.retention_config.vrt_toggle_probability
            if environment is not None:
                toggle_probability = environment.toggle_probability(
                    toggle_probability)
            profile.toggle_vrt(self._vrt_rng, toggle_probability)
            elapsed = now_ps - state.last_recharge_ps
            if environment is not None and elapsed > 0:
                elapsed = environment.effective_elapsed(self.index, row,
                                                        elapsed)
            if elapsed > 0:
                stored = state.stored_bits_at(profile.positions)
                for cell in profile.failed_cells(elapsed, stored):
                    position = int(profile.positions[cell])
                    state.faults[position] = 1 - int(profile.polarity[cell])
        if state.disturbance > 0:
            hammer = self._hammer(row, state)
            if len(hammer):
                stored = state.stored_bits_at(hammer.positions)
                for cell in hammer.flipped_cells(state.disturbance, stored):
                    position = int(hammer.positions[cell])
                    state.faults[position] = 1 - int(hammer.polarity[cell])

    def _recharge(self, state: RowState, now_ps: int) -> None:
        state.last_recharge_ps = now_ps
        state.disturbance = 0.0

    # -- host-visible operations (physical addressing) ----------------------

    def write(self, row: int, pattern: DataPattern, now_ps: int) -> None:
        """Overwrite the whole row; restores charge and clears faults."""
        state = self.state(row)
        state.pattern = pattern
        state.faults.clear()
        self._recharge(state, now_ps)

    def read(self, row: int, now_ps: int) -> np.ndarray:
        """Settle and return the row's stored bits; the ACT recharges it."""
        self.settle(row, now_ps)
        state = self.rows[row]
        bits = state.pattern.full(self.row_bits)
        for position, value in state.faults.items():
            bits[position] = value
        self._recharge(state, now_ps)
        return bits

    def read_mismatches(self, row: int, now_ps: int) -> list[int]:
        """Settle and return positions whose stored bit differs from the
        row's written pattern (sorted).  The ACT recharges the row."""
        self.settle(row, now_ps)
        state = self.rows[row]
        if state.faults:
            positions = np.fromiter(state.faults.keys(), dtype=np.int64,
                                    count=len(state.faults))
            written = state.pattern.bits_at(positions)
            stored = np.fromiter(state.faults.values(), dtype=np.uint8,
                                 count=len(state.faults))
            result = sorted(int(p) for p, w, s
                            in zip(positions, written, stored) if w != s)
        else:
            result = []
        self._recharge(state, now_ps)
        return result

    def absorb_hammering(self, batch: ActBatch, now_ps: int) -> None:
        """Apply an ACT batch: recharge aggressors, disturb their victims."""
        if batch.total == 0:
            return
        effective = self.disturbance_config.effective_acts(batch)
        # Cross-batch cascade continuity: if this batch starts with the
        # row the previous activation ended on, its first activation is a
        # run continuation, not a fresh full-strength run.
        first_row = batch.row_at(0)
        if first_row == self._last_activated and effective.get(first_row):
            effective[first_row] -= (
                1.0 - self.disturbance_config.cascade_weight)
        self._last_activated = batch.row_at(batch.total - 1)
        for aggressor, eff_acts in effective.items():
            if not 0 <= aggressor < self.num_rows:
                raise ConfigError(f"aggressor row {aggressor} out of range")
            self.settle(aggressor, now_ps)
            self._recharge(self.rows[aggressor], now_ps)
            for victim, weight in self.disturbance_config.victims_of(
                    aggressor, self.num_rows):
                self.state(victim).disturbance += eff_acts * weight

    def refresh_rows(self, rows, now_ps: int) -> None:
        """Refresh specific rows (used for TRR-induced refreshes)."""
        for row in rows:
            self.settle(row, now_ps)
            self._recharge(self.rows[row], now_ps)

    def regular_refresh(self, slot: int, now_ps: int) -> None:
        """Apply a regular-refresh slot to the tracked rows it covers."""
        for row in self._slot_rows.get(slot, ()):
            self.settle(row, now_ps)
            self._recharge(self.rows[row], now_ps)

    # -- ground-truth helpers (tests/analysis only; tools never call) -------

    def true_retention_ps(self, row: int, pattern: DataPattern) -> int:
        """Ground-truth retention time of *row* under *pattern*."""
        state = self.state(row)
        profile = self._retention(row, state)
        if not len(profile):
            return np.iinfo(np.int64).max
        return profile.min_retention_ps(pattern.bits_at(profile.positions))

    def true_min_hammer_threshold(self, row: int,
                                  pattern: DataPattern | None = None
                                  ) -> float:
        """Ground-truth weakest victim-cell threshold of *row*.

        With *pattern* given, only cells whose charged polarity is exposed
        by the stored data count (RowHammer is data-dependent).
        """
        state = self.state(row)
        profile = self._hammer(row, state)
        if pattern is None:
            return profile.base_threshold
        return profile.min_threshold_for(pattern.bits_at(profile.positions))
