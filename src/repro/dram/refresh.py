"""Regular (periodic) refresh engine.

A DDR4 controller issues one REF every tREFI; the chip internally
refreshes a contiguous *slot* of rows per REF so that every row is
refreshed once per ``cycle_refs`` REF commands.  The paper found vendor A
chips complete a pass in 3758 REFs (< 32 ms) while other vendors use the
nominal ~8K (Vendor A Observation 8); TRR Analyzer tells regular refreshes
apart from TRR-induced ones precisely because the regular schedule is a
fixed function of the REF index (§3.2).

The engine never touches row state itself.  It provides slot arithmetic
(`slot_of`, `rows_in_slot`) and remembers the wall time of the most
recent REF per slot in a ring buffer, so a lazily materialized row can
compute when it was last regularly refreshed without the simulator having
tracked it explicitly.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class RefreshEngine:
    """Slot-based regular refresh bookkeeping for one chip.

    A REF command refreshes the same slot index in every bank, so one
    engine serves the whole chip.
    """

    def __init__(self, num_rows: int, cycle_refs: int) -> None:
        if num_rows <= 0:
            raise ConfigError("num_rows must be positive")
        if cycle_refs <= 0:
            raise ConfigError("cycle_refs must be positive")
        if cycle_refs > num_rows:
            raise ConfigError(
                "cycle_refs must not exceed num_rows (empty slots)")
        self.num_rows = num_rows
        self.cycle_refs = cycle_refs
        self.total_refs = 0
        # Ring buffer: wall time of the most recent REF that hit each slot.
        # Zero means "not refreshed since the chip epoch".
        self._slot_times = np.zeros(cycle_refs, dtype=np.int64)

    def slot_of(self, row: int) -> int:
        """Refresh slot that covers physical *row*."""
        if not 0 <= row < self.num_rows:
            raise ConfigError(f"row {row} out of range")
        return row * self.cycle_refs // self.num_rows

    def rows_in_slot(self, slot: int) -> range:
        """Physical rows refreshed together when *slot* comes up."""
        if not 0 <= slot < self.cycle_refs:
            raise ConfigError(f"slot {slot} out of range")
        start = -(-slot * self.num_rows // self.cycle_refs)  # ceil division
        end = -(-(slot + 1) * self.num_rows // self.cycle_refs)
        return range(start, end)

    def on_ref(self, now_ps: int) -> int:
        """Record a REF command at *now_ps*; return the slot it refreshed."""
        slot = self.total_refs % self.cycle_refs
        self._slot_times[slot] = now_ps
        self.total_refs += 1
        return slot

    def last_regular_refresh_ps(self, row: int) -> int:
        """Wall time of the last regular refresh of *row* (0 = epoch)."""
        return int(self._slot_times[self.slot_of(row)])

    def refs_until_row(self, row: int) -> int:
        """REF commands (counting the next one as 1) until *row* is covered."""
        slot = self.slot_of(row)
        current = self.total_refs % self.cycle_refs
        return (slot - current) % self.cycle_refs + 1
