"""The simulated DRAM chip: virtual clock, banks, refresh, TRR hook.

:class:`DramChip` is the device-under-test.  Hosts (the SoftMC layer)
drive it through logical row addresses and DDR-shaped operations; the
chip internally decodes logical to physical addresses, applies
disturbance and retention physics, executes regular refresh slots, and
gives its TRR mechanism the chance to piggyback victim refreshes on
every REF command — all invisible to the host except through data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import ConfigError
from ..rng import SeedSequenceFactory
from ..trr.base import NoTrr, TrrContext, TrrMechanism
from ..units import NOMINAL_REFS_PER_WINDOW
from .bank import Bank
from .commands import ActBatch, HammerMode
from .disturbance import DisturbanceConfig
from .environment import ChipEnvironment
from .mapping import RowMapping, make_mapping
from .patterns import DataPattern
from .refresh import RefreshEngine
from .retention import RetentionConfig
from .timing import DDR4_DEFAULT, TimingParameters


@dataclass(frozen=True)
class DeviceConfig:
    """Static description of a simulated DRAM chip."""

    name: str = "generic-ddr4"
    serial: int = 0
    num_banks: int = 16
    rows_per_bank: int = 32_768
    row_bits: int = 8_192
    timing: TimingParameters = DDR4_DEFAULT
    mapping_scheme: str = "direct"
    retention: RetentionConfig = field(default_factory=RetentionConfig)
    disturbance: DisturbanceConfig = field(
        default_factory=DisturbanceConfig)
    #: REF commands per full regular-refresh pass (Vendor A: 3758).
    refresh_cycle_refs: int = NOMINAL_REFS_PER_WINDOW

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ConfigError("num_banks must be positive")
        if self.rows_per_bank <= 0:
            raise ConfigError("rows_per_bank must be positive")
        if self.row_bits <= 0 or self.row_bits % 64:
            raise ConfigError("row_bits must be a positive multiple of 64")

    def scaled(self, **overrides) -> "DeviceConfig":
        """Return a copy with some fields replaced (bench scaling helper)."""
        return replace(self, **overrides)


class ChipStats:
    """Mutable command counters (reads by tests and benchmarks)."""

    __slots__ = ("activates", "refreshes", "row_reads", "row_writes",
                 "trr_refreshes")

    def __init__(self) -> None:
        self.activates = 0
        self.refreshes = 0
        self.row_reads = 0
        self.row_writes = 0
        self.trr_refreshes = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class DramChip:
    """A simulated DDR4 chip with an (optional, hidden) TRR mechanism."""

    def __init__(self, config: DeviceConfig,
                 trr: TrrMechanism | None = None) -> None:
        self.config = config
        self.now_ps = 0
        self.stats = ChipStats()
        self._seeds = SeedSequenceFactory("chip", config.name, config.serial)
        self.refresh_engine = RefreshEngine(
            config.rows_per_bank, config.refresh_cycle_refs)
        self.mapping: RowMapping = make_mapping(
            config.mapping_scheme, config.rows_per_bank)
        #: Physical environment seam for fault injection; neutral (and a
        #: strict no-op) unless a FaultInjector drives it.
        self.environment = ChipEnvironment()
        self.banks = [
            Bank(index, config.rows_per_bank, config.row_bits,
                 config.retention, config.disturbance, self._seeds,
                 self.refresh_engine, environment=self.environment)
            for index in range(config.num_banks)
        ]
        self.trr = trr if trr is not None else NoTrr()
        self.trr.bind(TrrContext(
            num_banks=config.num_banks,
            num_rows=config.rows_per_bank,
            paired_rows=config.disturbance.paired_coupling))

    # -- clock ---------------------------------------------------------------

    def wait(self, duration_ps: int) -> None:
        """Let the chip sit idle (no refresh!) for *duration_ps*."""
        if duration_ps < 0:
            raise ConfigError("cannot wait a negative duration")
        self.now_ps += duration_ps

    # -- internal helpers -----------------------------------------------------

    def _bank(self, bank: int) -> Bank:
        try:
            return self.banks[bank]
        except IndexError:
            raise ConfigError(
                f"bank {bank} out of range [0, {self.config.num_banks})"
            ) from None

    def _physical_batch(self, batch: ActBatch) -> ActBatch:
        pattern = tuple((self.mapping.to_physical(row), count)
                        for row, count in batch.pattern)
        return ActBatch(bank=batch.bank, pattern=pattern, mode=batch.mode)

    def _ingest(self, physical_batch: ActBatch) -> None:
        """Feed one physical ACT batch to physics and TRR."""
        self._bank(physical_batch.bank).absorb_hammering(
            physical_batch, self.now_ps)
        self.trr.on_activations(physical_batch.bank, physical_batch,
                                self.now_ps)
        for victim_bank, victim_row in self.trr.immediate_refreshes(
                physical_batch.bank, physical_batch):
            self._bank(victim_bank).refresh_rows([victim_row], self.now_ps)
            self.stats.trr_refreshes += 1
        self.stats.activates += physical_batch.total

    def _single_act(self, bank: int, logical_row: int) -> int:
        """Account for the implicit ACT of a row read/write; returns the
        physical row."""
        physical = self.mapping.to_physical(logical_row)
        batch = ActBatch(bank=bank, pattern=((physical, 1),),
                         mode=HammerMode.CASCADED)
        self._ingest(batch)
        return physical

    # -- host-visible operations (logical addressing) -------------------------

    def write_row(self, bank: int, logical_row: int,
                  pattern: DataPattern) -> None:
        """Activate *logical_row* and overwrite it with *pattern*."""
        physical = self._single_act(bank, logical_row)
        self._bank(bank).write(physical, pattern, self.now_ps)
        timing = self.config.timing
        self.now_ps += timing.trcd_ps + timing.burst_write_ps + timing.trp_ps
        self.stats.row_writes += 1

    def read_row(self, bank: int, logical_row: int) -> np.ndarray:
        """Activate and read the full row; returns a 0/1 uint8 bit array."""
        physical = self._single_act(bank, logical_row)
        bits = self._bank(bank).read(physical, self.now_ps)
        timing = self.config.timing
        self.now_ps += timing.trcd_ps + timing.burst_read_ps + timing.trp_ps
        self.stats.row_reads += 1
        return bits

    def read_row_mismatches(self, bank: int, logical_row: int) -> list[int]:
        """Read the row and return bit positions differing from the data
        last written to it (the retention side channel's raw signal)."""
        physical = self._single_act(bank, logical_row)
        mismatches = self._bank(bank).read_mismatches(physical, self.now_ps)
        timing = self.config.timing
        self.now_ps += timing.trcd_ps + timing.burst_read_ps + timing.trp_ps
        self.stats.row_reads += 1
        return mismatches

    def hammer(self, batch: ActBatch) -> None:
        """Execute an ordered ACT/PRE batch against one bank."""
        physical = self._physical_batch(batch)
        self._ingest(physical)
        self.now_ps += self.config.timing.hammer_duration_ps(batch.total)

    def fusion_safe(self, batch: ActBatch, step_ps: int) -> bool:
        """Whether repeating *batch* back-to-back may run fused.

        Requires a TRR mechanism that declares batch-merge associativity
        (only stateless mechanisms do) and a bank-level proof that the
        skipped intermediate settles commit nothing.  Any validation
        error — e.g. an out-of-range aggressor — answers ``False`` so
        the per-command path raises it at the exact command it belongs
        to.
        """
        if not getattr(self.trr, "merge_associative", False):
            return False
        if batch.total == 0:
            return False
        try:
            physical = self._physical_batch(batch)
            return self._bank(physical.bank).fusion_safe(physical, step_ps)
        except ConfigError:
            return False

    def hammer_repeated(self, batch: ActBatch, repeats: int) -> None:
        """Execute *repeats* identical hammer batches in one fused pass.

        Caller contract: :meth:`fusion_safe` answered ``True`` for this
        batch at the per-command step.  TRR hooks are skipped — safe
        precisely because ``merge_associative`` mechanisms have no-op
        hooks — and the physics collapses into
        :meth:`Bank.absorb_repeated`.
        """
        if repeats <= 0:
            return
        if not getattr(self.trr, "merge_associative", False):
            raise ConfigError(
                "hammer_repeated requires a merge-associative TRR")
        physical = self._physical_batch(batch)
        step = self.config.timing.hammer_duration_ps(batch.total)
        self._bank(physical.bank).absorb_repeated(
            physical, self.now_ps, repeats, step)
        self.stats.activates += repeats * physical.total
        self.now_ps += repeats * step

    def hammer_multi(self, batches: list[ActBatch]) -> None:
        """Hammer several banks in parallel (tFAW-limited, max 4 banks)."""
        if not batches:
            return
        seen_banks = {batch.bank for batch in batches}
        if len(seen_banks) != len(batches):
            raise ConfigError("hammer_multi requires distinct banks")
        for batch in batches:
            self._ingest(self._physical_batch(batch))
        max_count = max(batch.total for batch in batches)
        self.now_ps += self.config.timing.multi_bank_hammer_duration_ps(
            max_count, len(batches))

    def refresh(self, count: int = 1, spacing_ps: int | None = None) -> None:
        """Issue *count* REF commands.

        ``spacing_ps`` is the time between consecutive REF issue points
        (defaults to back-to-back: each REF only consumes tRFC).  Pass
        ``timing.trefi_ps`` to refresh at the nominal controller cadence.
        """
        if count < 0:
            raise ConfigError("refresh count must be non-negative")
        timing = self.config.timing
        if spacing_ps is not None and spacing_ps < timing.trfc_ps:
            raise ConfigError("REF spacing below tRFC")
        for _ in range(count):
            start = self.now_ps
            self.now_ps += timing.trfc_ps
            slot = self.refresh_engine.on_ref(self.now_ps)
            for bank in self.banks:
                bank.regular_refresh(slot, self.now_ps)
            for victim_bank, victim_row in self.trr.on_refresh():
                self._bank(victim_bank).refresh_rows(
                    [victim_row], self.now_ps)
                self.stats.trr_refreshes += 1
            self.stats.refreshes += 1
            if spacing_ps is not None:
                self.now_ps = start + spacing_ps

    # -- raw command primitives (no clock movement; used by DdrBus) -----------

    def raw_activate(self, bank: int, logical_row: int) -> int:
        """One ACT's physics (disturb neighbors, feed TRR, recharge the
        row) without advancing the clock — the caller owns DDR timing."""
        return self._single_act(bank, logical_row)

    def raw_read(self, bank: int, logical_row: int) -> np.ndarray:
        """Read an (already activated) row's bits; no clock movement, no
        extra ACT — the activation happened at raw_activate time."""
        physical = self.mapping.to_physical(logical_row)
        bits = self._bank(bank).read(physical, self.now_ps)
        self.stats.row_reads += 1
        return bits

    def raw_write(self, bank: int, logical_row: int,
                  pattern: DataPattern) -> None:
        """Overwrite an (already activated) row; no clock movement."""
        physical = self.mapping.to_physical(logical_row)
        self._bank(bank).write(physical, pattern, self.now_ps)
        self.stats.row_writes += 1

    def raw_refresh(self) -> None:
        """One REF's internal work (regular slot + TRR piggyback) without
        advancing the clock."""
        slot = self.refresh_engine.on_ref(self.now_ps)
        for bank in self.banks:
            bank.regular_refresh(slot, self.now_ps)
        for victim_bank, victim_row in self.trr.on_refresh():
            self._bank(victim_bank).refresh_rows([victim_row], self.now_ps)
            self.stats.trr_refreshes += 1
        self.stats.refreshes += 1

    # -- ground truth (tests / evaluation reporting only) ---------------------

    def true_retention_ps(self, bank: int, logical_row: int,
                          pattern: DataPattern) -> int:
        physical = self.mapping.to_physical(logical_row)
        return self._bank(bank).true_retention_ps(physical, pattern)

    def true_min_hammer_threshold(self, bank: int, logical_row: int,
                                  pattern: DataPattern | None = None
                                  ) -> float:
        physical = self.mapping.to_physical(logical_row)
        return self._bank(bank).true_min_hammer_threshold(physical, pattern)
