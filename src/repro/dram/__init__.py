"""DRAM device simulator: the substrate U-TRR experiments run against.

The public surface of this package is :class:`DramChip` plus the
configuration dataclasses; everything else is internal physics.
"""

from .chip import DeviceConfig, DramChip
from .commands import ActBatch, HammerMode, single_row_batch
from .disturbance import DisturbanceConfig
from .environment import ChipEnvironment
from .mapping import (BitSwapMapping, DirectMapping, RowMapping,
                      XorScrambleMapping, available_schemes, make_mapping)
from .patterns import (AllOnes, AllZeros, ByteFill, Checkerboard,
                       CustomPattern, DataPattern, inverted,
                       pattern_from_spec, pattern_spec)
from .refresh import RefreshEngine
from .retention import RetentionConfig
from .timing import DDR4_DEFAULT, TimingParameters

__all__ = [
    "ActBatch",
    "AllOnes",
    "AllZeros",
    "BitSwapMapping",
    "ByteFill",
    "Checkerboard",
    "ChipEnvironment",
    "CustomPattern",
    "DDR4_DEFAULT",
    "DataPattern",
    "DeviceConfig",
    "DirectMapping",
    "DisturbanceConfig",
    "DramChip",
    "HammerMode",
    "RefreshEngine",
    "RetentionConfig",
    "RowMapping",
    "TimingParameters",
    "XorScrambleMapping",
    "available_schemes",
    "inverted",
    "make_mapping",
    "pattern_from_spec",
    "pattern_spec",
    "single_row_batch",
]
