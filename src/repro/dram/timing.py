"""DDR4 timing parameters.

The simulator's virtual clock advances according to these constraints, so
quantities the paper derives from wall time fall out of the model — most
importantly the *hammers-per-REF-interval budget* (footnote 10: at most
149 activations to one bank fit between two REF commands issued every
7.8 us, given typical tRAS/tRP/tRFC).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import ns, us


@dataclass(frozen=True)
class TimingParameters:
    """DDR4 timing constraints, in integer picoseconds.

    Defaults follow the values the paper assumes (35 ns activation,
    15 ns precharge, 350 ns refresh, 7.8 us REF cadence).
    """

    tras_ps: int = ns(35.0)   #: ACT to PRE minimum (row open time)
    trp_ps: int = ns(15.0)    #: PRE to next ACT on the same bank
    trcd_ps: int = ns(14.0)   #: ACT to first RD/WR
    trfc_ps: int = ns(350.0)  #: REF execution time
    trefi_ps: int = us(7.8)   #: controller REF cadence
    tfaw_ps: int = ns(160.0)  #: four-activation window (ACT throttle)
    trrd_ps: int = ns(5.3)    #: ACT to ACT, different banks
    burst_read_ps: int = ns(500.0)   #: full-row readout through the row buffer
    burst_write_ps: int = ns(500.0)  #: full-row write through the row buffer

    def __post_init__(self) -> None:
        for name in ("tras_ps", "trp_ps", "trcd_ps", "trfc_ps", "trefi_ps",
                     "tfaw_ps", "trrd_ps", "burst_read_ps", "burst_write_ps"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.trefi_ps <= self.trfc_ps:
            raise ConfigError("tREFI must exceed tRFC")

    @property
    def trc_ps(self) -> int:
        """Row cycle time: the cost of one hammer (ACT + PRE)."""
        return self.tras_ps + self.trp_ps

    def hammers_per_ref_interval(self) -> int:
        """Maximum single-bank activations between two REF commands.

        Matches the paper's footnote 10: (7.8 us - 350 ns) / 50 ns = 149.
        """
        return (self.trefi_ps - self.trfc_ps) // self.trc_ps

    def hammer_duration_ps(self, count: int) -> int:
        """Virtual time taken by *count* back-to-back one-bank hammers."""
        if count < 0:
            raise ConfigError("hammer count must be non-negative")
        return count * self.trc_ps

    def multi_bank_hammer_duration_ps(self, count_per_bank: int,
                                      num_banks: int) -> int:
        """Virtual time for hammering *num_banks* banks in parallel.

        Cross-bank activations are limited by tFAW (at most four ACTs per
        tFAW window), which is why the paper's vendor-B pattern hammers
        dummy rows in at most four banks (footnote 12).
        """
        if num_banks < 1:
            raise ConfigError("num_banks must be >= 1")
        if num_banks > 4:
            raise ConfigError(
                "tFAW permits parallel hammering of at most 4 banks")
        total_acts = count_per_bank * num_banks
        faw_limited = (total_acts * self.tfaw_ps + 3) // 4
        bank_limited = count_per_bank * self.trc_ps
        return max(faw_limited, bank_limited)


#: Shared default instance; timing is immutable so sharing is safe.
DDR4_DEFAULT = TimingParameters()


@dataclass(frozen=True)
class TimingStats:
    """Accumulated command counts, useful for tests and benchmarks."""

    activates: int = 0
    precharges: int = 0
    refreshes: int = 0
    reads: int = 0
    writes: int = 0

    def bump(self, **deltas: int) -> "TimingStats":
        values = {f: getattr(self, f) + deltas.get(f, 0)
                  for f in ("activates", "precharges", "refreshes",
                            "reads", "writes")}
        return TimingStats(**values)
