"""Compact representations of DDR command sequences.

The simulator never materializes one object per ACT — a single Row Scout
pass over a 64K-row bank already needs ~128K activations, and a
vulnerability sweep needs billions.  Instead, hammering is expressed as an
:class:`ActBatch`: an exact, ordered description of an activation sequence
(``[(row, count), ...]`` plus an ordering mode) that every consumer
(the disturbance model, each TRR mechanism) can ingest in O(#rows) while
preserving the *order-dependent* semantics the paper shows matter:

* sampling-based TRR keeps the **last** sampled activation (§6.2.2);
* window-based TRR consumes activation *slots* in order (§6.3);
* interleaved vs. cascaded hammering disturb victims differently (§5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigError


class HammerMode(enum.Enum):
    """Ordering of activations when several rows are hammered together.

    INTERLEAVED hammers each row one activation at a time, round-robin,
    until all rows reach their counts.  CASCADED hammers one row until its
    full count before moving to the next (§5.2).
    """

    INTERLEAVED = "interleaved"
    CASCADED = "cascaded"


@dataclass(frozen=True)
class ActBatch:
    """An ordered batch of activations to one bank.

    ``pattern`` is a sequence of ``(row, count)`` pairs.  Under CASCADED
    mode the concrete ACT sequence is the runs concatenated in order.
    Under INTERLEAVED mode rows are activated round-robin: the i-th ACT
    goes to the row with the smallest index among those that still have
    activations left (counts may differ).
    """

    bank: int
    pattern: tuple[tuple[int, int], ...]
    mode: HammerMode = HammerMode.CASCADED

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ConfigError("ActBatch pattern must not be empty")
        total = 0
        for row, count in self.pattern:
            if count < 0:
                raise ConfigError(f"negative hammer count for row {row}")
            total += count
        # The batch is frozen, so the activation total never changes;
        # computing it once here keeps `total` O(1) on the hot path
        # (disturbance, TRR, and timing all consult it per batch).
        object.__setattr__(self, "_total", total)
        if self.mode is HammerMode.INTERLEAVED:
            rows = [row for row, _ in self.pattern]
            if len(set(rows)) != len(rows):
                raise ConfigError(
                    "INTERLEAVED batches require distinct rows "
                    "(interleaving a row with itself is a cascaded run)")

    @property
    def total(self) -> int:
        """Total number of activations in the batch."""
        return self._total

    def counts_by_row(self) -> dict[int, int]:
        """Aggregate activation counts per row (order-insensitive view)."""
        counts: dict[int, int] = {}
        for row, count in self.pattern:
            counts[row] = counts.get(row, 0) + count
        return counts

    def row_at(self, index: int) -> int:
        """Return the row receiving the *index*-th activation (0-based).

        This realizes the exact ACT ordering without materializing it.
        """
        if index < 0 or index >= self.total:
            raise IndexError(f"activation index {index} out of range")
        if self.mode is HammerMode.CASCADED:
            offset = index
            for row, count in self.pattern:
                if offset < count:
                    return row
                offset -= count
            raise AssertionError("unreachable")
        return self._interleaved_row_at(index)

    def _interleaved_row_at(self, index: int) -> int:
        # Round-robin over rows; a row drops out once its count is spent.
        # Walk whole "rounds" at a time so cost is O(#rows * #distinct counts).
        remaining = [(row, count) for row, count in self.pattern]
        offset = index
        while True:
            active = [(row, count) for row, count in remaining if count > 0]
            width = len(active)
            min_count = min(count for _, count in active)
            full_rounds_acts = width * min_count
            if offset < full_rounds_acts:
                return active[offset % width][0]
            offset -= full_rounds_acts
            remaining = [(row, count - min_count) for row, count in active]

    def run_stats(self) -> dict[int, tuple[int, int]]:
        """Return ``{row: (num_runs, total_acts)}`` for the ACT sequence.

        A *run* is a maximal stretch of consecutive activations to the
        same row.  The disturbance model weights the first activation of
        each run at full strength and the rest at the reduced cascaded
        weight (§5.2: interleaved hammering disturbs victims far more per
        activation than cascaded hammering).  Computed analytically in
        O(#rows x #distinct counts) — never by expanding the sequence.
        """
        stats: dict[int, list[int]] = {}

        def add(row: int, runs: int, acts: int) -> None:
            entry = stats.setdefault(row, [0, 0])
            entry[0] += runs
            entry[1] += acts

        if self.mode is HammerMode.CASCADED:
            previous_row: int | None = None
            for row, count in self.pattern:
                if count == 0:
                    continue
                # Adjacent same-row entries merge into one run.
                add(row, 0 if row == previous_row else 1, count)
                previous_row = row
            return {row: (runs, acts) for row, (runs, acts) in stats.items()}

        remaining = [(row, count) for row, count in self.pattern if count > 0]
        previous_last: int | None = None
        while remaining:
            if len(remaining) == 1:
                row, count = remaining[0]
                # A solo tail is one cascaded run — merged with the last
                # activation of the previous round if it was the same row.
                add(row, 0 if row == previous_last else 1, count)
                break
            min_count = min(count for _, count in remaining)
            # All remaining rows alternate for min_count rounds: every
            # activation starts a new run, except the block's first one
            # when it continues the previous block's final row.
            for i, (row, _count) in enumerate(remaining):
                runs = min_count
                if i == 0 and row == previous_last:
                    runs -= 1
                add(row, runs, min_count)
            previous_last = remaining[-1][0]
            remaining = [(row, count - min_count)
                         for row, count in remaining if count > min_count]
        return {row: (runs, acts) for row, (runs, acts) in stats.items()}


def single_row_batch(bank: int, row: int, count: int) -> ActBatch:
    """Convenience constructor for hammering a single row."""
    return ActBatch(bank=bank, pattern=((row, count),),
                    mode=HammerMode.CASCADED)
