"""Mutable physical environment of a chip (temperature, VRT activity).

Real modules do not sit in a vacuum: ambient temperature drifts over an
experiment (scaling every cell's retention time), and VRT activity comes
in bursts.  :class:`ChipEnvironment` is the seam through which the fault
-injection layer (:mod:`repro.faults`) perturbs the retention physics
without the banks or the host knowing who is driving it.

The neutral environment (all scales 1.0, no per-row override) is a
strict no-op: every code path returns its input unchanged, so a chip
without fault injection behaves bit-identically to one built before this
module existed.
"""

from __future__ import annotations

from typing import Callable


class ChipEnvironment:
    """Current environmental state, consulted by banks at settle time."""

    __slots__ = ("vrt_toggle_scale", "retention_scale", "row_retention_scale")

    def __init__(self) -> None:
        #: Multiplier on every VRT cell's per-observation toggle
        #: probability (VRT storms raise it far above 1).
        self.vrt_toggle_scale: float = 1.0
        #: Global retention-time multiplier (temperature: >1 = cooler,
        #: cells retain longer; <1 = hotter, cells decay faster).
        self.retention_scale: float = 1.0
        #: Optional per-row retention multiplier ``(bank, row) -> float``
        #: (cross-session profile staleness).  ``None`` = no override.
        self.row_retention_scale: Callable[[int, int], float] | None = None

    def reset(self) -> None:
        self.vrt_toggle_scale = 1.0
        self.retention_scale = 1.0
        self.row_retention_scale = None

    @property
    def neutral(self) -> bool:
        return (self.vrt_toggle_scale == 1.0
                and self.retention_scale == 1.0
                and self.row_retention_scale is None)

    def toggle_probability(self, base: float) -> float:
        """Effective VRT toggle probability under the current environment."""
        if self.vrt_toggle_scale == 1.0:
            return base
        return min(base * self.vrt_toggle_scale, 1.0)

    def effective_elapsed(self, bank: int, row: int, elapsed_ps: int) -> int:
        """Unrefreshed time as the retention model should see it.

        Scaling the elapsed time down by the retention scale is exactly
        equivalent to scaling every cell's retention time up, without
        touching the (immutable, seeded) per-row profiles.
        """
        scale = self.retention_scale
        if self.row_retention_scale is not None:
            scale *= self.row_retention_scale(bank, row)
        if scale == 1.0:
            return elapsed_ps
        return int(elapsed_ps / scale)
